"""Analytic performance model: predict time/messages/bytes without events.

The event simulator stops being practical past a few dozen nodes, yet the
interesting scaling questions — does the 2(n-1) fork-join beat the 8(n-1)
one at 256 nodes?  when does XHPF's broadcast-everything fallback drown the
network? — live at 16-1024 nodes.  Following the compositional modeling
methodology (Czappa et al.), this module walks the *same compiled program
structure* the backends execute and composes closed-form per-phase cost
terms along it, instead of scheduling events:

* the DSM variants (``spf``/``spf_old``) are modeled by a deterministic
  *protocol replica*: the real interval/vector-time machinery
  (:mod:`repro.tmk.intervals`), barrier/lock bookkeeping
  (:mod:`repro.tmk.sync`) and the LRC diff/fetch rules of
  :mod:`repro.tmk.protocol` are advanced in lockstep over the compiled
  schedule, with word-granularity write masks standing in for twins;
* the message-passing variants (``xhpf``/``xhpf_ie``) are modeled by
  replaying the XHPF runtime's exchange/broadcast/inspector enumeration
  arithmetically — the same footprints, owners and packet segmentation,
  but no message objects in flight;
* ``seq`` degenerates to the sequential oracle.

Predictions carry the same :class:`~repro.eval.experiments.VariantResult`
shape as a simulation, flagged ``mode="model"``.  Message and byte counts
are the contract — ``tests/test_model_validation.py`` pins them against the
simulator at N <= 8 (validate small), which is what licenses the
``repro sweep`` extrapolation to 1024 nodes (trust large).  Virtual time is
a documented heuristic: protocol overheads are charged at the simulator's
rates but request/reply concurrency is approximated (see docs/MODEL.md).

The hand-coded variants (``tmk``/``pvme``) have no IR to compose over, and
``spf_opt`` exercises enhanced-interface paths the model does not replicate;
all three raise :class:`ModelUnsupportedVariant` — refusal is part of the
contract, exactly as the static lint refuses irregular apps.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.apps.common import get_app
from repro.compiler.ir import Access, Mark, ParallelLoop, Point, SeqBlock, Span
from repro.compiler.partition import block_owner, block_range, cyclic_indices
from repro.compiler.seq import sequential_time
from repro.compiler.spf import (REDUCTION_PREFIX, STAGING_PREFIX, SpfOptions,
                                _ensure_order, compile_spf)
from repro.compiler.xhpf import XhpfOptions, compile_xhpf
from repro.sim.machine import PAGE_SIZE, SP2_MODEL, MachineModel
from repro.tmk.forkjoin import CONTROL_BYTES, CTRL_ARG, CTRL_SUB, STOP
from repro.tmk.intervals import (IntervalRecord, SeenVector,
                                 notice_payload_nbytes, records_unknown_to)
from repro.tmk.pagespace import SharedSpace
from repro.tmk.stats import DsmStats
from repro.tmk.sync import BarrierManager, LockTable

from repro.api.registry import MODELED_VARIANTS

__all__ = ["ModelUnsupportedVariant", "MODELED_VARIANTS", "model_variant"]

_WORD = 4
_RUN_HEADER = 8
_WORDS_PER_PAGE = PAGE_SIZE // _WORD


class ModelUnsupportedVariant(ValueError):
    """The analytic model declines this variant (no IR / unmodeled paths)."""


# ---------------------------------------------------------------------- #
# traffic bookkeeping (mirrors sim.network.NetworkStats payload counting)

class _Traffic:
    """Message/byte totals per category — the model's NetworkStats."""

    def __init__(self):
        self.messages = 0
        self.bytes = 0
        self.by_category: dict[str, list] = {}

    def send(self, nbytes: int, category: str, count: int = 1) -> None:
        """Record ``count`` wire messages carrying ``nbytes`` payload total."""
        self.messages += count
        self.bytes += nbytes
        cell = self.by_category.setdefault(category, [0, 0])
        cell[0] += count
        cell[1] += nbytes

    @property
    def kilobytes(self) -> float:
        return self.bytes / 1024.0

    def snapshot(self) -> "_Traffic":
        snap = _Traffic()
        snap.messages = self.messages
        snap.bytes = self.bytes
        snap.by_category = {k: list(v) for k, v in self.by_category.items()}
        return snap

    def delta(self, earlier: "_Traffic") -> "_Traffic":
        out = _Traffic()
        out.messages = self.messages - earlier.messages
        out.bytes = self.bytes - earlier.bytes
        for key in set(self.by_category) | set(earlier.by_category):
            a = self.by_category.get(key, [0, 0])
            b = earlier.by_category.get(key, [0, 0])
            out.by_category[key] = [a[0] - b[0], a[1] - b[1]]
        return out


def _mask_diff_nbytes(mask: np.ndarray) -> int:
    """Wire size of the diff a twin comparison with this word mask yields.

    Mirrors :func:`repro.tmk.diffs.make_diff` + ``diff_nbytes``: maximal
    runs of consecutive changed words, each run costing its data bytes plus
    a (base, length) header.
    """
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return 0
    runs = 1 + int(np.count_nonzero(np.diff(idx) > 1))
    return int(idx.size) * _WORD + runs * _RUN_HEADER


def _seg_count(nbytes: int, packet: Optional[int]) -> int:
    """Packets one logical send becomes (Comm.send segmentation rule)."""
    if packet and nbytes > packet:
        full, last = divmod(nbytes, packet)
        return full + (1 if last else 0)
    return 1


def _tree_depth(n: int) -> int:
    return max(1, math.ceil(math.log2(n))) if n > 1 else 0


# ---------------------------------------------------------------------- #
# public entry point

def model_variant(app: str, variant: str, nprocs: int = 8,
                  preset: str = "bench",
                  machine: Optional[MachineModel] = None,
                  seq_time: Optional[float] = None,
                  gc_epochs: Optional[int] = 8):
    """Predict one (application, variant) run analytically.

    Returns a :class:`~repro.api.RunResult` (the historical
    ``VariantResult``) with ``mode="model"``; same fields as a simulated
    run (``dsm`` carries the predicted :class:`DsmStats` for the DSM
    variants).  Raises :class:`ModelUnsupportedVariant` for
    ``tmk``/``pvme``/``spf_opt``.
    """
    from repro.api.types import RunResult

    if variant not in MODELED_VARIANTS:
        raise ModelUnsupportedVariant(
            f"variant {variant!r} is not analytically modeled "
            f"(hand-coded programs have no IR to compose over; spf_opt "
            f"uses enhanced-interface paths the model does not replicate); "
            f"modeled variants: {MODELED_VARIANTS}")

    spec = get_app(app)
    params = spec.params(preset)
    mach = (machine or SP2_MODEL).with_(nprocs=nprocs)

    if variant == "seq":
        from repro.compiler.seq import run_sequential
        _views, scalars, time = run_sequential(spec.build_program(params))
        return RunResult(app=spec.name, variant="seq", nprocs=1,
                         preset=preset, time=time, seq_time=time,
                         messages=0, kilobytes=0.0,
                         signature=dict(scalars), mode="model")

    if seq_time is None:
        seq_time = sequential_time(spec.build_program(params))

    program = spec.build_program(params)
    if variant in ("spf", "spf_old"):
        options = SpfOptions(improved_interface=(variant == "spf"))
        m = _SpfModel(program, nprocs, mach, options, gc_epochs=gc_epochs)
    else:
        options = XhpfOptions(inspector_executor=(variant == "xhpf_ie"))
        m = _XhpfModel(program, nprocs, mach, options)
    m.run()

    elapsed, wtraffic = m.window()
    total = m.traffic
    return RunResult(
        app=app, variant=variant, nprocs=nprocs, preset=preset,
        time=elapsed, seq_time=seq_time,
        messages=wtraffic.messages, kilobytes=wtraffic.kilobytes,
        signature=dict(m.scalars), dsm=m.dsm_stats,
        total_messages=total.messages, total_kilobytes=total.kilobytes,
        categories={k: (v[0], v[1]) for k, v in wtraffic.by_category.items()},
        mode="model",
    )


class _ModelBase:
    """Shared mark/window bookkeeping for both backend replicas."""

    def __init__(self):
        self.traffic = _Traffic()
        self.marks: dict[str, tuple] = {}
        self.scalars: dict = {}
        self.dsm_stats: Optional[DsmStats] = None
        self._finish = 0.0

    def _mark(self, label: str, now: float) -> None:
        self.marks[label] = (now, self.traffic.snapshot())

    def window(self, start: str = "start", stop: str = "stop"):
        """(elapsed, traffic) between marks — RunResult.window semantics."""
        if start not in self.marks or stop not in self.marks:
            return self._finish, self.traffic
        t0, s0 = self.marks[start]
        t1, s1 = self.marks[stop]
        return t1 - t0, s1.delta(s0)


# ---------------------------------------------------------------------- #
# the DSM protocol replica (spf / spf_old)

class _MPage:
    """PageMeta replica (twin presence lives in the node's mask dict)."""

    __slots__ = ("valid", "pending", "applied", "last_written",
                 "last_closed", "last_okey", "sticky")

    def __init__(self):
        self.valid = True
        self.pending: dict[int, int] = {}
        self.applied: dict[int, int] = {}
        self.last_written = 0
        self.last_closed = 0
        self.last_okey: Optional[tuple] = None
        self.sticky = False

    def missing_writers(self) -> list:
        out = []
        for w, need in self.pending.items():
            have = self.applied.get(w, 0)
            if need > have:
                out.append((w, have))
        return out


class _CacheEnt:
    """Diff-cache entry replica: sizes instead of run lists."""

    __slots__ = ("top", "wm", "okey", "nbytes", "epoch")

    def __init__(self, top, wm, okey, nbytes, epoch):
        self.top = top
        self.wm = wm
        self.okey = okey
        self.nbytes = nbytes
        self.epoch = epoch


class _MNode:
    """One processor's protocol state (TmkNode replica, no memory image)."""

    def __init__(self, pid: int, nprocs: int):
        self.pid = pid
        self.nprocs = nprocs
        self.seen = SeenVector(nprocs)
        self.open_writes: set[int] = set()
        self.log_current: list[IntervalRecord] = []
        self.log_prev: list[IntervalRecord] = []
        self.meta: dict[int, _MPage] = {}
        self.masks: dict[int, np.ndarray] = {}   # page -> changed-word mask
        self.diff_cache: dict[int, list] = {}
        self.gc_floor: dict[int, int] = {}
        self.epoch = 0
        self.time = 0.0
        self.prev_touched: dict = {}

    def page(self, page: int) -> _MPage:
        m = self.meta.get(page)
        if m is None:
            m = _MPage()
            self.meta[page] = m
        return m

    @property
    def retained_log(self) -> list:
        return self.log_prev + self.log_current


class _SpfModel(_ModelBase):
    """Lockstep replica of the SPF-on-TreadMarks execution.

    One converged global memory image stands in for every node's private
    copy (legal for race-free programs: a node always faults a page current
    before touching it).  Per-node boolean word masks stand in for twins;
    diff sizes come from the masks via the exact ``make_diff`` run rules.
    Each dispatch unit advances in phases — read faults for every
    processor, then write faults + kernels, then staging, then serialized
    reduction folds — which is the typical interleaving the simulator's
    scheduler produces (everyone faults at chunk start).
    """

    def __init__(self, program, nprocs: int, machine: MachineModel,
                 options: SpfOptions, gc_epochs: Optional[int] = 8):
        super().__init__()
        self.machine = machine
        self.nprocs = nprocs
        self.gc_epochs = gc_epochs
        self.exe = compile_spf(program, nprocs, options)
        self.space = SharedSpace()
        self.exe.setup_space(self.space)
        self.image = np.zeros(self.space.nbytes, dtype=np.uint8)
        self.words = self.image.view(np.uint32)
        self.views = {h.name: self.image[h.offset:h.offset + h.nbytes]
                      .view(h.dtype).reshape(h.shape)
                      for h in self.space.handles()}
        self.nodes = [_MNode(pid, nprocs) for pid in range(nprocs)]
        self.stats = DsmStats()
        self.dsm_stats = self.stats
        self.barrier_mgr = BarrierManager(nprocs)
        self.lock_table = LockTable(nprocs)
        self._worker_seen = {w: SeenVector(nprocs)
                             for w in range(1, nprocs)}
        so, ro = machine.send_overhead, machine.recv_overhead
        self._hop = lambda nbytes: so + machine.message_time(nbytes) + ro

    # ---- faulting (ensure_read / ensure_write replicas) ------------------

    def _ensure_read_pages(self, node: _MNode, pages) -> None:
        for page in np.asarray(pages).tolist():
            m = node.page(page)
            if m.valid:
                continue
            self.stats.read_faults += 1
            node.time += self.machine.fault_overhead
            self._fetch(node, page, m)

    def _ensure_write_pages(self, node: _MNode, pages) -> None:
        mach = self.machine
        for page in np.asarray(pages).tolist():
            m = node.page(page)
            if not m.valid:
                self.stats.read_faults += 1
                node.time += mach.fault_overhead
                self._fetch(node, page, m)
            if page not in node.masks:
                self.stats.write_faults += 1
                self.stats.twins_created += 1
                node.time += mach.fault_overhead + mach.twin_overhead
                node.masks[page] = np.zeros(_WORDS_PER_PAGE, dtype=bool)
            m.last_written = node.seen[node.pid] + 1
            node.open_writes.add(page)

    def _fetch(self, node: _MNode, page: int, m: _MPage) -> None:
        missing = m.missing_writers()
        if not missing:
            m.valid = True
            return
        self.stats.fetches += 1
        mach = self.machine
        replies = []
        for w, from_id in missing:
            self.traffic.send(24, "diff_req")
            node.time += self._hop(24) + mach.protocol_overhead
            entries, full_top, full_applied = self._serve(
                self.nodes[w], page, from_id, node)
            if full_top is not None:
                nbytes = 16 + mach.page_size
            else:
                nbytes = 16 + sum(e.nbytes for e in entries)
            self.traffic.send(nbytes, "diff_rep")
            node.time += self._hop(nbytes)
            replies.append((w, entries, full_top, full_applied))
        self._apply_replies(node, page, m, replies)
        m.valid = True

    def _serve(self, owner: _MNode, page: int, from_id: int,
               charge: _MNode):
        """serve_diff_request replica on the owner, incl. the GC fallback."""
        m = owner.page(page)
        if page in owner.masks:
            self._create_diff(owner, page, m, charge=charge)
        floor = owner.gc_floor.get(page, 0)
        cached = owner.diff_cache.get(page, [])
        if from_id < floor:
            top = max([m.last_closed] + [e.top for e in cached])
            return [], top, dict(m.applied)
        return [e for e in cached if e.top > from_id], None, None

    def _create_diff(self, owner: _MNode, page: int, m: _MPage,
                     charge: Optional[_MNode]) -> None:
        mask = owner.masks.pop(page)
        nbytes = _mask_diff_nbytes(mask)
        self.stats.diffs_created += 1
        self.stats.diff_bytes_created += nbytes
        self._cache_entry(owner, page, m, nbytes)
        if charge is not None:
            charge.time += self.machine.diff_create_time(self.machine.page_size)

    def _cache_entry(self, owner: _MNode, page: int, m: _MPage,
                     nbytes: int) -> None:
        if not nbytes:
            return
        top = m.last_written
        if page in owner.open_writes:
            wm = m.last_closed
            okey = (sum(owner.seen.v) + 1, owner.pid)
        else:
            wm = m.last_written
            okey = m.last_okey if m.last_okey is not None \
                else (sum(owner.seen.v), owner.pid)
        lst = owner.diff_cache.setdefault(page, [])
        if lst and lst[-1].top >= top:
            prev = lst.pop()
            lst.append(_CacheEnt(max(prev.top, top), max(prev.wm, wm),
                                 max(prev.okey, okey),
                                 prev.nbytes + nbytes, owner.epoch))
        else:
            lst.append(_CacheEnt(top, wm, okey, nbytes, owner.epoch))

    def _apply_replies(self, node: _MNode, page: int, m: _MPage,
                       replies) -> None:
        base_applied: dict = {}
        fulls = [(w, ft, fa) for w, _e, ft, fa in replies if ft is not None]
        if fulls:
            w, ft, fa = max(fulls, key=lambda t: t[1])
            base_applied = dict(fa or {})
            base_applied[w] = max(base_applied.get(w, 0), ft)
            self.stats.full_page_fetches += 1
            for ww, ftw, _fa in fulls:
                m.applied[ww] = max(m.applied.get(ww, 0), ftw,
                                    m.pending.get(ww, 0))
        for w, entries, _ft, _fa in replies:
            for e in entries:
                if e.top <= base_applied.get(w, 0):
                    m.applied[w] = max(m.applied.get(w, 0), e.wm)
                    continue
                node.time += self.machine.diff_apply_time(e.nbytes)
                self.stats.diffs_applied += 1
                self.stats.diff_bytes_applied += e.nbytes
                m.applied[w] = max(m.applied.get(w, 0), e.wm)
        for w, _from in m.missing_writers():
            m.applied[w] = max(m.applied.get(w, 0), m.pending.get(w, 0))

    # ---- interval machinery ---------------------------------------------

    def _close_interval(self, node: _MNode) -> None:
        if not node.open_writes:
            return
        new_id = node.seen[node.pid] + 1
        node.seen.v[node.pid] = new_id
        vtsum = sum(node.seen.v)
        rec = IntervalRecord(proc=node.pid, id=new_id,
                             pages=tuple(sorted(node.open_writes)),
                             vtsum=vtsum)
        okey = (vtsum, node.pid)
        for page in node.open_writes:
            m = node.page(page)
            m.last_okey = okey
            m.last_closed = new_id
        node.open_writes = set()
        node.log_current.append(rec)

    def _prune_log(self, node: _MNode) -> None:
        node.log_prev = node.log_current
        node.log_current = []

    def _apply_records(self, node: _MNode, records: list,
                       log: bool) -> None:
        self.stats.epoch_bumps += 1
        writers_per_page: dict[int, set] = {}
        for rec in records:
            if not node.seen.observe(rec):
                continue
            if log:
                node.log_current.append(rec)
            for page in rec.pages:
                writers_per_page.setdefault(page, set()).add(rec.proc)
                self._apply_notice(node, rec.proc, rec.id, page)
        for page, writers in writers_per_page.items():
            m = node.meta.get(page)
            if m is None:
                continue
            if len(writers) > 1 or (m.last_written > 0
                                    and writers - {node.pid}):
                m.sticky = True

    def _apply_notice(self, node: _MNode, writer: int, interval_id: int,
                      page: int) -> None:
        if writer == node.pid:
            return
        m = node.page(page)
        if interval_id > m.pending.get(writer, 0):
            m.pending[writer] = interval_id
        if interval_id <= m.applied.get(writer, 0):
            return
        if page in node.masks:
            self._create_diff(node, page, m, charge=node)
        if m.valid:
            m.valid = False
            self.stats.invalidations += 1

    def _advance_epoch(self, node: _MNode) -> None:
        node.epoch += 1
        if self.gc_epochs is None:
            return
        cutoff = node.epoch - self.gc_epochs
        if cutoff <= 0:
            return
        for page, lst in list(node.diff_cache.items()):
            m = node.meta.get(page)
            if m is not None and m.sticky:
                continue
            kept = [e for e in lst if e.epoch >= cutoff]
            if len(kept) < len(lst):
                dropped_top = max(e.top for e in lst if e.epoch < cutoff)
                node.gc_floor[page] = max(node.gc_floor.get(page, 0),
                                          dropped_top)
            if kept:
                node.diff_cache[page] = kept
            else:
                del node.diff_cache[page]

    # ---- synchronization replicas ---------------------------------------

    def _barrier(self) -> None:
        mach = self.machine
        arrive = 0.0
        payloads = {}
        for node in self.nodes:
            self.stats.barriers += 1
            self._close_interval(node)
            payloads[node.pid] = list(node.log_current)
            self._prune_log(node)
        if self.nprocs == 1:
            self._advance_epoch(self.nodes[0])
            return
        mgr = self.barrier_mgr
        gen = mgr.gen
        for node in self.nodes:
            recs = payloads[node.pid]
            if node.pid != 0:
                nbytes = 16 + notice_payload_nbytes(
                    recs, mach.interval_header_bytes, mach.write_notice_bytes)
                self.traffic.send(nbytes, "sync")
                arrive = max(arrive, node.time + self._hop(nbytes)
                             + mach.protocol_overhead)
            else:
                arrive = max(arrive, node.time)
            mgr.note_arrival(node.pid, gen, recs, node.seen.as_tuple())
        departures = mgr.departures()
        for node in self.nodes:
            recs = departures[node.pid]
            if node.pid != 0:
                nbytes = 16 + notice_payload_nbytes(
                    recs, mach.interval_header_bytes, mach.write_notice_bytes)
                self.traffic.send(nbytes, "sync")
                node.time = arrive + self._hop(nbytes)
            else:
                node.time = arrive
            self._apply_records(node, recs, log=False)
            self._advance_epoch(node)

    def _lock_acquire(self, node: _MNode, lock: int) -> None:
        self.stats.lock_acquires += 1
        table = self.lock_table
        mach = self.machine
        manager = table.manager_of(lock)
        req_nbytes = 16 + 8 * self.nprocs
        prev, _after = table.note_request(lock, node.pid)
        if node.pid == manager:
            if prev == node.pid:
                return                      # token never left: no messages
            self.stats.lock_remote_acquires += 1
            self.traffic.send(req_nbytes, "sync")     # forward to prev
            node.time += self._hop(req_nbytes) + mach.protocol_overhead
            self._grant(node, self.nodes[prev], lock)
            return
        self.stats.lock_remote_acquires += 1
        self.traffic.send(req_nbytes, "sync")         # request to manager
        node.time += self._hop(req_nbytes) + mach.protocol_overhead
        if prev == node.pid:
            self.traffic.send(16, "sync")             # empty grant
            node.time += self._hop(16)
            self._apply_records(node, [], log=True)
        elif prev == manager:
            self._grant(node, self.nodes[manager], lock)
        else:
            self.traffic.send(req_nbytes, "sync")     # manager forwards
            node.time += self._hop(req_nbytes) + mach.protocol_overhead
            self._grant(node, self.nodes[prev], lock)

    def _grant(self, node: _MNode, holder: _MNode, lock: int) -> None:
        mach = self.machine
        records = records_unknown_to(holder.retained_log, node.seen)
        nbytes = 16 + notice_payload_nbytes(
            records, mach.interval_header_bytes, mach.write_notice_bytes)
        self.traffic.send(nbytes, "sync")
        node.time += self._hop(nbytes)
        self._apply_records(node, records, log=True)

    def _lock_release(self, node: _MNode, lock: int) -> None:
        self._close_interval(node)
        self.lock_table.note_release(node.pid, lock)

    # ---- fork-join replicas ---------------------------------------------

    def _fork_improved(self, params_nbytes_unused=None) -> list:
        mach = self.machine
        master = self.nodes[0]
        self._close_interval(master)
        arrivals = []
        for w in range(1, self.nprocs):
            records = records_unknown_to(master.retained_log,
                                         self._worker_seen[w])
            nbytes = CONTROL_BYTES + notice_payload_nbytes(
                records, mach.interval_header_bytes, mach.write_notice_bytes)
            self.traffic.send(nbytes, "sync")
            master.time += mach.send_overhead
            arrivals.append((w, records, nbytes))
            self._worker_seen[w] = master.seen.copy()
        self._prune_log(master)
        self._advance_epoch(master)
        for w, records, nbytes in arrivals:
            worker = self.nodes[w]
            worker.time = max(worker.time, master.time
                              + mach.message_time(nbytes)
                              + mach.recv_overhead)
            self._apply_records(worker, records, log=False)
            self._advance_epoch(worker)
        return arrivals

    def _join_improved(self) -> None:
        mach = self.machine
        master = self.nodes[0]
        arrivals = []
        for w in range(1, self.nprocs):
            worker = self.nodes[w]
            self._close_interval(worker)
            records = list(worker.log_current)
            self._prune_log(worker)
            nbytes = 16 + notice_payload_nbytes(
                records, mach.interval_header_bytes, mach.write_notice_bytes)
            self.traffic.send(nbytes, "sync")
            worker.time += mach.send_overhead
            arrivals.append((w, records, worker.seen.copy(),
                             worker.time + mach.message_time(nbytes)))
        self._close_interval(master)
        for w, records, seen, t_arr in arrivals:
            master.time = max(master.time, t_arr) + mach.recv_overhead
            self._apply_records(master, records, log=True)
            self._worker_seen[w] = seen

    def _fork_old(self, sub_id: int, params: tuple) -> None:
        master = self.nodes[0]
        self._captured_write(
            master, CTRL_SUB, (slice(0, 2),),
            [float(sub_id), float(len(params))])
        if len(params):
            self._captured_write(
                master, CTRL_ARG, (slice(0, len(params)),),
                np.asarray(params, dtype=np.float64))
        self._barrier()
        # workers read the two control pages (page fault each when invalid)
        nargs = len(params)
        for node in self.nodes[1:]:
            self._ensure_region(node, CTRL_SUB, (slice(0, 2),), write=False)
            self._ensure_region(node, CTRL_ARG,
                                (slice(0, max(nargs, 1)),), write=False)

    # ---- captured writes (mask maintenance) ------------------------------

    def _region_pages(self, name: str, region):
        return self.space[name].region_pages(region)

    def _ensure_region(self, node: _MNode, name: str, region,
                       write: bool) -> None:
        pages = self._region_pages(name, region)
        if write:
            self._ensure_write_pages(node, pages)
        else:
            self._ensure_read_pages(node, pages)

    def _snapshot(self, pages) -> dict:
        out = {}
        for page in np.asarray(pages).tolist():
            lo = page * _WORDS_PER_PAGE
            out[page] = self.words[lo:lo + _WORDS_PER_PAGE].copy()
        return out

    def _capture(self, node: _MNode, before: dict) -> None:
        for page, old in before.items():
            lo = page * _WORDS_PER_PAGE
            changed = self.words[lo:lo + _WORDS_PER_PAGE] != old
            mask = node.masks.get(page)
            if mask is not None:
                mask |= changed

    def _captured_write(self, node: _MNode, name: str, region,
                        values) -> None:
        pages = self._region_pages(name, region)
        self._ensure_write_pages(node, pages)
        before = self._snapshot(pages)
        self.views[name][region] = values
        self._capture(node, before)

    # ---- program walk ----------------------------------------------------

    def run(self) -> None:
        master = self.nodes[0]
        improved = self.exe.options.improved_interface
        for idx, unit in enumerate(self.exe.units):
            if unit.mark is not None:
                self._mark(unit.mark, master.time)
                continue
            if unit.seq is not None:
                self._run_seq(unit.seq)
                continue
            for loop in unit.loops:
                for red in loop.reductions:
                    self._captured_write(master, REDUCTION_PREFIX + red.name,
                                         (slice(0, 1),), red.identity)
            head = unit.loops[0]
            if improved:
                self._fork_improved()
            else:
                self._fork_old(idx, (float(head.start), float(head.extent)))
            self._run_unit_loops(unit)
            if improved:
                self._join_improved()
            else:
                self._barrier()
        if improved:
            self._fork_improved()              # fork(STOP): same wire shape
        else:
            self._fork_old(STOP, ())
        self.scalars = self._read_scalars()
        self._finish = max(node.time for node in self.nodes)

    def _run_seq(self, stmt: SeqBlock) -> None:
        master = self.nodes[0]
        for acc in stmt.reads:
            self._ensure_read_pages(master, self._acc_pages(acc, ("block", 0, 0)))
        wpages: list = []
        for acc in stmt.writes:
            pgs = self._acc_pages(acc, ("block", 0, 0))
            self._ensure_write_pages(master, pgs)
            wpages.extend(pgs)
        before = self._snapshot(wpages)
        stmt.kernel(self.views)
        self._capture(master, before)
        cost = stmt.cost(self.exe.program.params) if callable(stmt.cost) \
            else float(stmt.cost)
        if cost:
            master.time += cost

    def _chunk(self, loop: ParallelLoop, pid: int):
        if loop.schedule == "cyclic":
            indices = cyclic_indices(loop.extent, self.nprocs, pid, loop.start)
            return ("cyclic", indices) if indices.size else None
        span = loop.extent - loop.start
        lo, hi = block_range(span, self.nprocs, pid)
        lo += loop.start
        hi += loop.start
        return ("block", lo, hi) if hi > lo else None

    def _acc_pages(self, acc: Access, chunk):
        handle = self.space[acc.array]
        if chunk[0] == "cyclic":
            indices = chunk[1]
            if acc.irregular:
                idx = acc.region.footprint(self.views, indices, None)
                return handle.element_pages(np.asarray(idx))
            lead = acc.region[0] if acc.region else None
            if isinstance(lead, Span) and lead.lo_off == 0 and lead.hi_off == 0:
                row_elems = int(np.prod(handle.shape[1:])) \
                    if len(handle.shape) > 1 else 1
                return handle.element_pages(indices * row_elems,
                                            elem_span=row_elems)
            region = acc.resolve(int(indices.min()), int(indices.max()) + 1,
                                 handle.shape)
            return handle.region_pages(region)
        lo, hi = chunk[1], chunk[2]
        if acc.irregular:
            idx = acc.region.footprint(self.views, lo, hi)
            return handle.element_pages(np.asarray(idx))
        return handle.region_pages(acc.resolve(lo, hi, handle.shape))

    def _run_unit_loops(self, unit) -> None:
        chunks = {(pid, li): self._chunk(loop, pid)
                  for li, loop in enumerate(unit.loops)
                  for pid in range(self.nprocs)}
        # phase A: every processor's read faults (chunk-start behaviour)
        for node in self.nodes:
            for li, loop in enumerate(unit.loops):
                ch = chunks[(node.pid, li)]
                if ch is None:
                    continue
                for acc in _ensure_order(loop.reads, loop.accumulate):
                    self._ensure_read_pages(node, self._acc_pages(acc, ch))
        # phase B: write faults + kernel + staging, processor by processor
        partials_by: dict = {}
        for node in self.nodes:
            for li, loop in enumerate(unit.loops):
                ch = chunks[(node.pid, li)]
                views = self.views
                privates = None
                if loop.accumulate:
                    views = dict(self.views)
                    privates = {}
                    for name in loop.accumulate:
                        decl = self.exe.program.decl(name)
                        privates[name] = views[name] = np.zeros(
                            decl.shape, dtype=decl.dtype)
                if ch is None:
                    partials = None
                    cost = 0.0
                else:
                    wpages: list = []
                    for acc in _ensure_order(loop.writes, loop.accumulate):
                        pgs = self._acc_pages(acc, ch)
                        self._ensure_write_pages(node, pgs)
                        wpages.extend(np.asarray(pgs).tolist())
                    before = self._snapshot(wpages)
                    if ch[0] == "cyclic":
                        indices = ch[1]
                        partials = loop.kernel(views, indices)
                        cost = (sum(loop.cost_per_iter(int(i))
                                    for i in indices)
                                if callable(loop.cost_per_iter)
                                else loop.cost_per_iter * indices.size)
                    else:
                        lo, hi = ch[1], ch[2]
                        partials = loop.kernel(views, lo, hi)
                        cost = loop.chunk_cost(lo, hi)
                    self._capture(node, before)
                if cost:
                    node.time += cost
                if loop.accumulate:
                    self._stage_contributions(node, loop, privates)
                partials_by[(node.pid, li)] = partials
        # phase C: reduction folds, serialized through the lock chain
        free_at = 0.0
        for node in self.nodes:
            for li, loop in enumerate(unit.loops):
                if not loop.reductions:
                    continue
                partials = partials_by.get((node.pid, li))
                for red in loop.reductions:
                    val = (partials or {}).get(red.name, red.identity)
                    _red, lock_id = self.exe.reductions[red.name]
                    node.time = max(node.time, free_at)
                    self._lock_acquire(node, lock_id)
                    name = REDUCTION_PREFIX + red.name
                    self._ensure_region(node, name, (slice(0, 1),),
                                        write=False)
                    cur = float(self.views[name][0])
                    self._captured_write(node, name, (slice(0, 1),),
                                         red.combine(cur, val))
                    self._lock_release(node, lock_id)
                    free_at = node.time

    def _stage_contributions(self, node: _MNode, loop: ParallelLoop,
                             privates: dict) -> None:
        for name, buf in privates.items():
            handle = self.space[STAGING_PREFIX + name]
            flat = buf.reshape(buf.shape[0], -1)
            touched = np.flatnonzero(np.any(flat != 0, axis=1))
            key = (loop.name, name)
            prev = node.prev_touched.get(key)
            if prev is not None and (len(prev) != len(touched)
                                     or not np.array_equal(prev, touched)):
                touched = np.union1d(prev, touched)
            node.prev_touched[key] = touched
            if touched.size == 0:
                continue
            row_elems = int(np.prod(buf.shape[1:])) if buf.ndim > 1 else 1
            base = node.pid * buf.shape[0]
            pages = handle.element_pages((base + touched) * row_elems,
                                         elem_span=row_elems)
            self._ensure_write_pages(node, pages)
            before = self._snapshot(pages)
            self.views[STAGING_PREFIX + name][node.pid, touched] = buf[touched]
            self._capture(node, before)

    def _read_scalars(self) -> dict:
        master = self.nodes[0]
        out = {}
        for name in self.exe.reductions:
            self._ensure_region(master, REDUCTION_PREFIX + name,
                                (slice(0, 1),), write=False)
            out[name] = float(self.views[REDUCTION_PREFIX + name][0])
        return out


# ---------------------------------------------------------------------- #
# the message-passing replica (xhpf / xhpf_ie)

class _XhpfModel(_ModelBase):
    """Arithmetic replay of the XHPF runtime's communication enumeration.

    A single converged array image stands in for the replicated per-rank
    copies (owner-computes chunks are disjoint, so running every rank's
    kernel chunk in turn reproduces the converged values); exchanges,
    broadcasts and inspector schedules are enumerated with the runtime's own
    owner/footprint arithmetic and turned into message/byte counts plus a
    per-rank clock, instead of messages in flight.
    """

    def __init__(self, program, nprocs: int, machine: MachineModel,
                 options: XhpfOptions):
        super().__init__()
        self.machine = machine
        self.nprocs = nprocs
        self.options = options
        self.exe = compile_xhpf(program, nprocs, options)
        self.packet = (machine.mp_packet_bytes
                       if options.segment_transfers else None)
        self.views = {a.name: np.zeros(a.shape, dtype=a.dtype)
                      for a in program.arrays}
        self.state = {a.name: True for a in program.arrays}
        self.caches: list[set] = [set() for _ in range(nprocs)]
        self.times = np.zeros(nprocs)

    # ---- bookkeeping helpers ---------------------------------------------

    def _count_edges(self, edges: int, nbytes: int,
                     category: str = "data") -> None:
        """``edges`` identical sends of ``nbytes`` each (bulk counting)."""
        seg = _seg_count(nbytes, self.packet)
        tr = self.traffic
        tr.messages += edges * seg
        tr.bytes += edges * nbytes
        cell = tr.by_category.setdefault(category, [0, 0])
        cell[0] += edges * seg
        cell[1] += edges * nbytes

    def _phase(self, edges: list) -> None:
        """Count a point-to-point phase [(src, dst, nbytes, category)] and
        advance the per-rank clock: sends overlap, receivers drain their
        inbound bytes after the slowest sender."""
        if not edges:
            return
        mach, n = self.machine, self.nprocs
        sm = np.zeros(n)
        rm = np.zeros(n)
        rb = np.zeros(n)
        for src, dst, nbytes, cat in edges:
            seg = _seg_count(nbytes, self.packet)
            self.traffic.send(nbytes, cat, count=seg)
            sm[src] += seg
            rm[dst] += seg
            rb[dst] += nbytes
        self.times += sm * mach.send_overhead
        peak = float(self.times.max())
        hot = rm > 0
        self.times[hot] = (np.maximum(self.times[hot], peak + mach.latency)
                           + rb[hot] * mach.byte_time
                           + rm[hot] * mach.recv_overhead)

    def _sync_clock(self, round_nbytes: list) -> None:
        """Tree-collective clock: all ranks meet, then pay depth x hop."""
        mach = self.machine
        peak = float(self.times.max())
        depth = _tree_depth(self.nprocs)
        for nbytes in round_nbytes:
            peak += depth * (mach.send_overhead + mach.message_time(nbytes)
                             + mach.recv_overhead)
        self.times[:] = peak

    @staticmethod
    def _row_span(rows) -> tuple:
        return (rows, rows + 1) if isinstance(rows, int) \
            else (rows.start, rows.stop)

    def _rect_row_nbytes(self, rect, decl) -> int:
        elems = 1
        for d, r in enumerate(rect[1:], start=1):
            elems *= 1 if isinstance(r, int) \
                else len(range(*r.indices(decl.shape[d])))
        return elems * np.dtype(decl.dtype).itemsize

    # ---- program walk ----------------------------------------------------

    def run(self) -> None:
        for stmt in self.exe.schedule:
            if isinstance(stmt, Mark):
                self._mark(stmt.label, float(self.times.max()))
            elif isinstance(stmt, SeqBlock):
                self._run_seq(stmt)
            else:
                self._run_loop(stmt)
        self._finish = float(self.times.max())

    def _run_seq(self, stmt: SeqBlock) -> None:
        for acc in stmt.reads:
            self._broadcast_region(acc)
        stmt.kernel(self.views)
        cost = stmt.cost(self.exe.program.params) if callable(stmt.cost) \
            else float(stmt.cost)
        if cost:
            self.times += cost        # redundant SPMD execution

    def _broadcast_region(self, acc: Access) -> None:
        exe, n = self.exe, self.nprocs
        decl = exe.decls[acc.array]
        if decl.distribute is None or acc.irregular:
            return
        region = acc.resolve(0, 0, decl.shape)
        row_lo, row_hi = self._row_span(region[0])
        row_nbytes = self._rect_row_nbytes(region, decl)
        if decl.dist_kind == "cyclic":
            if row_hi != row_lo + 1:
                raise NotImplementedError("multi-row sequential reads of "
                                          "CYCLIC arrays")
            nbytes = row_nbytes
            self._count_edges(n - 1, nbytes)
            self._sync_clock([nbytes])
            return
        first = block_owner(decl.shape[0], n, max(0, row_lo))
        last = block_owner(decl.shape[0], n, min(decl.shape[0], row_hi) - 1)
        for owner in range(first, last + 1):
            olo, ohi = exe.owned_rows(decl, owner)
            lo, hi = max(row_lo, olo), min(row_hi, ohi)
            if hi <= lo:
                continue
            nbytes = (hi - lo) * row_nbytes
            self._count_edges(n - 1, nbytes)
            self._sync_clock([nbytes])

    def _run_loop(self, loop: ParallelLoop) -> None:
        exe, n = self.exe, self.nprocs
        if loop.irregular:
            if self.options.inspector_executor:
                self._run_irregular_inspector(loop)
            else:
                self._run_irregular_loop(loop)
            return
        for acc in loop.writes:
            if exe.decls[acc.array].distribute is not None:
                self.state[acc.array] = False
        chunks = [exe.chunk_bounds(loop, p) for p in range(n)]
        partials_by: dict = {}
        if isinstance(chunks[0], np.ndarray):
            self._exchange_cyclic(loop)
            for p, idx in enumerate(chunks):
                if idx.size:
                    partials_by[p] = loop.kernel(self.views, idx)
                    cost = (sum(loop.cost_per_iter(int(i)) for i in idx)
                            if callable(loop.cost_per_iter)
                            else loop.cost_per_iter * idx.size)
                else:
                    partials_by[p] = None
                    cost = 0.0
                if cost:
                    self.times[p] += cost
        else:
            self._exchange_block(loop, chunks)
            for p, (lo, hi) in enumerate(chunks):
                if hi > lo:
                    partials_by[p] = loop.kernel(self.views, lo, hi)
                    cost = loop.chunk_cost(lo, hi)
                else:
                    partials_by[p] = None
                    cost = 0.0
                if cost:
                    self.times[p] += cost
        self._fold_reductions(loop, partials_by)

    def _exchange_block(self, loop: ParallelLoop, chunks: list) -> None:
        exe, n = self.exe, self.nprocs
        edges: list = []
        for acc in loop.reads:
            decl = exe.decls[acc.array]
            if decl.distribute is None:
                continue
            for receiver in range(n):
                rlo, rhi = chunks[receiver]
                if rhi <= rlo:
                    continue
                rect = acc.resolve(rlo, rhi, decl.shape)
                need_lo, need_hi = self._row_span(rect[0])
                if need_hi <= need_lo:
                    continue
                row_nbytes = self._rect_row_nbytes(rect, decl)
                if decl.dist_kind == "cyclic":
                    counts = np.bincount(
                        np.arange(need_lo, need_hi, dtype=np.int64) % n,
                        minlength=n)
                    for owner in np.flatnonzero(counts).tolist():
                        if owner == receiver:
                            continue
                        edges.append((owner, receiver,
                                      int(counts[owner]) * row_nbytes,
                                      "data"))
                else:
                    first = block_owner(decl.shape[0], n, max(0, need_lo))
                    last = block_owner(decl.shape[0], n,
                                       min(decl.shape[0], need_hi) - 1)
                    for owner in range(first, last + 1):
                        if owner == receiver:
                            continue
                        olo, ohi = exe.owned_rows(decl, owner)
                        lo, hi = max(need_lo, olo), min(need_hi, ohi)
                        if hi <= lo:
                            continue
                        edges.append((owner, receiver,
                                      (hi - lo) * row_nbytes, "data"))
        self._phase(edges)

    def _exchange_cyclic(self, loop: ParallelLoop) -> None:
        for acc in loop.reads:
            decl = self.exe.decls[acc.array]
            if decl.distribute is None:
                continue
            lead = acc.region[0] if acc.region else None
            if isinstance(lead, Point):
                self._broadcast_region(
                    Access(acc.array, (lead,) + tuple(acc.region[1:])))

    # ---- irregular loops -------------------------------------------------

    def _run_irregular_loop(self, loop: ParallelLoop) -> None:
        exe, n = self.exe, self.nprocs
        for acc in loop.reads:
            decl = exe.decls[acc.array]
            if decl.distribute is None or self.state.get(acc.array, True):
                continue
            self._broadcast_partitions(decl)
            self.state[acc.array] = True
        for name in loop.accumulate:
            self.views[name][...] = 0
        partials_by = self._run_chunks(loop)
        for name in loop.accumulate:
            nbytes = int(self.views[name].nbytes)
            self._count_edges(n * (n - 1), nbytes)
            seg = _seg_count(nbytes, self.packet)
            mach = self.machine
            peak = float(self.times.max())
            self.times[:] = (peak + (n - 1) * mach.send_overhead
                             + mach.latency
                             + (n - 1) * nbytes * mach.byte_time
                             + (n - 1) * seg * mach.recv_overhead)
            self.state[name] = True
        for acc in loop.writes:
            decl = exe.decls[acc.array]
            if decl.distribute is None or acc.array in loop.accumulate:
                continue
            self._broadcast_partitions(decl)
            self.state[acc.array] = True
        self._fold_reductions(loop, partials_by)

    def _run_chunks(self, loop: ParallelLoop) -> dict:
        """Every rank's kernel chunk, run in turn over the converged image."""
        partials_by: dict = {}
        for p in range(self.nprocs):
            chunk = self.exe.chunk_bounds(loop, p)
            if isinstance(chunk, np.ndarray):
                count = chunk.size
                partials_by[p] = loop.kernel(self.views, chunk) \
                    if count else None
                cost = (sum(loop.cost_per_iter(int(i)) for i in chunk)
                        if callable(loop.cost_per_iter)
                        else loop.cost_per_iter * count)
            else:
                lo, hi = chunk
                count = max(0, hi - lo)
                partials_by[p] = loop.kernel(self.views, lo, hi) \
                    if count else None
                cost = loop.chunk_cost(lo, hi) if count else 0.0
            if cost:
                self.times[p] += cost
        return partials_by

    def _broadcast_partitions(self, decl) -> None:
        exe, n, mach = self.exe, self.nprocs, self.machine
        part_nbytes = []
        total = 0
        for p in range(n):
            olo, ohi = exe.owned_rows(decl, p)
            nbytes = int(self.views[decl.name][olo:ohi].nbytes)
            part_nbytes.append(nbytes)
            total += nbytes
            self._count_edges(n - 1, nbytes)
        self.times += (n - 1) * mach.send_overhead
        peak = float(self.times.max())
        recv_b = np.array([total - nb for nb in part_nbytes], dtype=float)
        self.times[:] = (peak + mach.latency + recv_b * mach.byte_time
                         + (n - 1) * mach.recv_overhead)

    def _run_irregular_inspector(self, loop: ParallelLoop) -> None:
        from repro.compiler.inspector import (footprint_fingerprint,
                                              inspect_reads)
        exe, n = self.exe, self.nprocs
        irr_reads = [acc for acc in loop.reads
                     if acc.irregular and acc.array not in loop.accumulate]
        if len(irr_reads) != 1:
            raise NotImplementedError("inspector-executor expects one "
                                      "irregular read stream per loop")
        acc = irr_reads[0]
        decl = exe.decls[acc.array]
        row_elems = int(np.prod(decl.shape[1:])) if len(decl.shape) > 1 else 1
        row_nbytes = row_elems * np.dtype(decl.dtype).itemsize
        owner_bounds = [exe.owned_rows(decl, p) for p in range(n)]
        bounds = [exe.chunk_bounds(loop, p) for p in range(n)]

        recv_rows: list[dict] = []
        ret_rows: list[dict] = []
        misses: list[int] = []
        for p in range(n):
            lo, hi = bounds[p]
            flat = acc.region.footprint(self.views, lo, hi) if hi > lo \
                else np.empty(0, np.int64)
            fp = footprint_fingerprint(flat)
            rr = inspect_reads(flat, row_elems, (lo, hi), owner_bounds)
            recv_rows.append(rr)
            ret_rows.append(dict(rr) if loop.accumulate else {})
            key = (loop.name, fp)
            if key not in self.caches[p]:
                self.caches[p].add(key)
                misses.append(p)
                self.times[p] += (self.options.inspect_cost_per_element
                                  * max(len(flat), 1))
        sched_edges = []
        for p in misses:
            for peer in range(n):
                if peer == p:
                    continue
                want = recv_rows[p].get(peer, np.empty(0, np.int64))
                give = ret_rows[p].get(peer, np.empty(0, np.int64))
                sched_edges.append((p, peer,
                                    int(want.nbytes) + int(give.nbytes) + 8,
                                    "sync"))
        self._phase(sched_edges)

        # executor: scheduled gather of referenced rows
        gather_edges = []
        for p in range(n):
            for peer, rows in sorted(recv_rows[p].items()):
                if len(rows):
                    gather_edges.append((peer, p,
                                         len(rows) * row_nbytes, "data"))
        self._phase(gather_edges)

        for name in loop.accumulate:
            self.views[name][...] = 0
        partials_by = self._run_chunks(loop)

        # scheduled return of accumulation contributions
        for name in loop.accumulate:
            buf = self.views[name]
            acc_row_nbytes = int(buf.nbytes) // buf.shape[0] \
                if buf.shape[0] else 0
            return_edges = []
            for p in range(n):
                for peer, rows in sorted(ret_rows[p].items()):
                    if len(rows):
                        return_edges.append((p, peer,
                                             len(rows) * acc_row_nbytes,
                                             "data"))
            self._phase(return_edges)
            self.state[name] = False
        for acc_w in loop.writes:
            wdecl = exe.decls.get(acc_w.array)
            if wdecl is not None and wdecl.distribute is not None:
                self.state[acc_w.array] = False
        self._fold_reductions(loop, partials_by)

    # ---- reductions ------------------------------------------------------

    def _fold_reductions(self, loop: ParallelLoop, partials_by: dict) -> None:
        n = self.nprocs
        for red in loop.reductions:
            total = red.identity
            for p in range(n):
                val = (partials_by.get(p) or {}).get(red.name, red.identity)
                total = red.combine(total, val)
            self.scalars[red.name] = total
            if n > 1:
                self._count_edges(2 * (n - 1), 8)
                self._sync_clock([8, 8])

"""Tests for message-passing collectives (repro.msg.collectives)."""

import numpy as np
import pytest

from repro.msg import Comm, Pvme
from repro.msg.collectives import (allgather, allreduce, alltoall, bcast,
                                   gather, mp_barrier, reduce, scatter)
from repro.sim import Cluster

SIZES = [1, 2, 3, 5, 8]


def run(nprocs, fn):
    return Cluster(nprocs=nprocs).run(fn)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("root", [0, -1])
def test_bcast_all_sizes_roots(n, root):
    root = root % n

    def prog(env):
        comm = Comm(env)
        value = {"data": 123} if env.pid == root else None
        return bcast(comm, value, root=root)

    r = run(n, prog)
    assert all(res == {"data": 123} for res in r.results)


def test_bcast_message_count_n_minus_one():
    def prog(env):
        bcast(Comm(env), 1 if env.pid == 0 else None, root=0)

    for n in SIZES:
        r = run(n, prog)
        assert r.messages == n - 1, f"n={n}"


@pytest.mark.parametrize("n", SIZES)
def test_reduce_sum(n):
    def prog(env):
        return reduce(Comm(env), env.pid + 1, lambda a, b: a + b, root=0)

    r = run(n, prog)
    assert r.results[0] == n * (n + 1) // 2
    assert all(res is None for res in r.results[1:])


@pytest.mark.parametrize("n", SIZES)
def test_allreduce_max(n):
    def prog(env):
        return allreduce(Comm(env), env.pid * 2, max)

    r = run(n, prog)
    assert r.results == [(n - 1) * 2] * n


@pytest.mark.parametrize("n", SIZES)
def test_gather_rank_order(n):
    def prog(env):
        return gather(Comm(env), f"r{env.pid}", root=0)

    r = run(n, prog)
    assert r.results[0] == [f"r{i}" for i in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_allgather(n):
    def prog(env):
        return allgather(Comm(env), env.pid ** 2)

    r = run(n, prog)
    assert all(res == [i ** 2 for i in range(n)] for res in r.results)


@pytest.mark.parametrize("n", SIZES)
def test_scatter(n):
    def prog(env):
        vals = [i * 10 for i in range(n)] if env.pid == 0 else None
        return scatter(Comm(env), vals, root=0)

    r = run(n, prog)
    assert r.results == [i * 10 for i in range(n)]


def test_scatter_wrong_length_raises():
    def prog(env):
        if env.pid == 0:
            with pytest.raises(ValueError):
                scatter(Comm(env), [1], root=0)
        # rank 1 must not wait for a scatter that never happens

    run(2, prog)


@pytest.mark.parametrize("n", SIZES)
def test_alltoall_permutes(n):
    def prog(env):
        vals = [env.pid * 100 + d for d in range(n)]
        return alltoall(Comm(env), vals)

    r = run(n, prog)
    for dst, res in enumerate(r.results):
        assert res == [src * 100 + dst for src in range(n)]


def test_alltoall_message_count():
    def prog(env):
        alltoall(Comm(env), list(range(env.nprocs)))

    for n in (2, 4, 8):
        r = run(n, prog)
        assert r.messages == n * (n - 1)


@pytest.mark.parametrize("n", SIZES)
def test_mp_barrier_synchronizes(n):
    def prog(env):
        env.compute(0.01 * (env.pid + 1))
        mp_barrier(Comm(env))
        return env.now

    r = run(n, prog)
    assert all(t >= 0.01 * n for t in r.results)


def test_collectives_compose_in_sequence():
    def prog(env):
        comm = Comm(env)
        a = allreduce(comm, 1, lambda x, y: x + y)
        b = bcast(comm, a * 2 if env.pid == 0 else None, root=0)
        c = allgather(comm, b + env.pid)
        return c

    r = run(4, prog)
    assert all(res == [8, 9, 10, 11] for res in r.results)


def test_numpy_payloads_through_collectives():
    def prog(env):
        comm = Comm(env)
        arr = np.full(100, env.pid, dtype=np.float64)
        total = allreduce(comm, arr, lambda a, b: a + b)
        return float(total[0])

    r = run(4, prog)
    assert r.results == [6.0] * 4


def test_pvme_facade_roundtrip():
    def prog(env):
        p = Pvme(env)
        assert p.tid == env.pid and p.ntasks == env.nprocs
        if p.tid == 0:
            p.send(1, np.arange(4.0), tag=3)
        elif p.tid == 1:
            got = p.recv(src=0, tag=3)
            return got.tolist()
        return None

    r = run(2, prog)
    assert r.results[1] == [0.0, 1.0, 2.0, 3.0]


def test_pvme_exchange_symmetric():
    def prog(env):
        p = Pvme(env)
        peer = 1 - p.tid
        got = p.exchange(peer, f"hello-from-{p.tid}", tag=7)
        return got

    r = run(2, prog)
    assert r.results == ["hello-from-1", "hello-from-0"]


def test_pvme_block_range_covers_extent():
    def prog(env):
        p = Pvme(env)
        return p.block_range(100)

    r = run(7, prog)
    spans = r.results
    assert spans[0][0] == 0 and spans[-1][1] == 100
    for (a, b), (c, d) in zip(spans, spans[1:]):
        assert b == c and b > a

"""Loop-nest intermediate representation.

An application is a :class:`Program`: array declarations plus a statement
list.  Statements are

* :class:`SeqBlock` — sequential code with declared array footprints,
* :class:`ParallelLoop` — a DO loop annotated parallel, whose per-chunk
  array footprints are *affine region expressions* of the chunk bounds
  (``Span``), whole dimensions (``Full``), fixed indices (``Point``), or
  explicitly unanalyzable (``Irregular`` — an indirection array defeats the
  compiler, exactly the situation IGrid and NBF put the paper's compilers
  in),
* :class:`TimeLoop` — a sequential iteration loop around inner statements.

The numeric work of each block/loop is an ordinary numpy *kernel* operating
on full-array views; the backends guarantee (by DSM hooks or by message
passing) that the declared footprint is locally current before the kernel
runs.  Kernels must touch only their declared footprints — the test suite
checks every application variant against the sequential oracle, which
executes the same kernels, so a footprint lie shows up as a numeric
mismatch on some processor count.

Region expressions evaluate to concrete numpy basic indices given chunk
bounds ``(lo, hi)``::

    Access("a", (Span(-1, +1), Full()))       # a[lo-1 : hi+1, :]
    Access("x", (Point(0), Span()))           # x[0, lo:hi]
    Access("grid", Irregular(lambda views, lo, hi: flat_indices))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

__all__ = ["Dim", "Span", "Full", "Point", "Irregular", "Access",
           "ArrayDecl", "Reduction", "SeqBlock", "ParallelLoop", "TimeLoop",
           "Program", "Stmt", "FootprintError"]


class FootprintError(ValueError):
    """A region expression that cannot be resolved against its array.

    Subclasses :class:`ValueError` for backward compatibility, but carries
    the facts of the failure as attributes so a static checker can report
    the defect with source attribution instead of parsing a message:

    ``array``        the array name,
    ``kind``         "rank" (region rank exceeds array rank) or "bounds"
                     (a ``Point`` index outside ``[0, extent)``),
    ``region_rank``/``array_rank``   set for "rank" failures,
    ``dim``/``index``/``extent``     set for "bounds" failures.
    """

    def __init__(self, array: str, kind: str, message: str, *,
                 region_rank: Optional[int] = None,
                 array_rank: Optional[int] = None,
                 dim: Optional[int] = None,
                 index: Optional[int] = None,
                 extent: Optional[int] = None):
        super().__init__(f"{array}: {message}")
        self.array = array
        self.kind = kind
        self.region_rank = region_rank
        self.array_rank = array_rank
        self.dim = dim
        self.index = index
        self.extent = extent


# ---------------------------------------------------------------------- #
# region expressions

class Dim:
    """Base class of per-dimension region expressions."""

    def resolve(self, lo: int, hi: int, extent: int):
        raise NotImplementedError


@dataclass(frozen=True)
class Span(Dim):
    """``slice(lo + lo_off, hi + hi_off)`` clipped to the dimension.

    The default ``Span()`` is exactly the chunk; ``Span(-1, +1)`` widens one
    row each way (a stencil halo).
    """

    lo_off: int = 0
    hi_off: int = 0

    def resolve(self, lo: int, hi: int, extent: int) -> slice:
        return slice(max(0, lo + self.lo_off), min(extent, hi + self.hi_off))


@dataclass(frozen=True)
class Full(Dim):
    """The whole dimension."""

    def resolve(self, lo: int, hi: int, extent: int) -> slice:
        return slice(0, extent)


@dataclass(frozen=True)
class Point(Dim):
    """A fixed index, or a computed one (``fn(lo, hi) -> int``)."""

    index: Union[int, Callable[[int, int], int]] = 0

    def resolve(self, lo: int, hi: int, extent: int) -> int:
        idx = self.index(lo, hi) if callable(self.index) else self.index
        if idx < 0:
            idx += extent
        return idx


@dataclass(frozen=True)
class Irregular:
    """An access the compiler cannot analyze (indirect addressing).

    ``footprint(views, lo, hi) -> flat element indices`` is evaluated *at
    run time* by the generated code — the DSM backend faults exactly the
    touched pages (on-demand fetching), while the XHPF backend falls back
    to broadcasting whole partitions, as the paper describes.
    """

    footprint: Callable = None  # (views, lo, hi) -> np.ndarray of flat indices


@dataclass(frozen=True)
class Access:
    """One array access of a statement: which array, which region."""

    array: str
    region: Union[tuple, Irregular]

    @property
    def irregular(self) -> bool:
        return isinstance(self.region, Irregular)

    def resolve(self, lo: int, hi: int, shape: tuple) -> tuple:
        """Concrete numpy index for chunk [lo, hi) (affine accesses only)."""
        if self.irregular:
            raise TypeError(f"access to {self.array} is irregular")
        dims = self.region
        if len(dims) > len(shape):
            raise FootprintError(
                self.array, "rank",
                f"region rank {len(dims)} exceeds array rank {len(shape)}",
                region_rank=len(dims), array_rank=len(shape))
        out = []
        for d, dim_expr in enumerate(dims):
            comp = dim_expr.resolve(lo, hi, shape[d])
            if isinstance(comp, int) and not 0 <= comp < shape[d]:
                raise FootprintError(
                    self.array, "bounds",
                    f"Point index {comp} outside [0, {shape[d]}) "
                    f"in dimension {d}",
                    dim=d, index=comp, extent=shape[d])
            out.append(comp)
        for d in range(len(dims), len(shape)):
            out.append(slice(0, shape[d]))
        return tuple(out)


# ---------------------------------------------------------------------- #
# declarations and statements

@dataclass(frozen=True)
class ArrayDecl:
    """A program array.

    ``distribute`` is the HPF-style data-distribution directive consumed by
    XHPF: the dimension distributed BLOCK-wise across processors (``None``
    means replicated).  SPF ignores it (TreadMarks gives a single shared
    image); the DSM layout pads every array to page boundaries.
    """

    name: str
    shape: tuple
    dtype: object = np.float32
    distribute: Optional[int] = None
    dist_kind: str = "block"            # block | cyclic (HPF CYCLIC)

    def __post_init__(self):
        object.__setattr__(self, "shape",
                           tuple(int(s) for s in self.shape))
        if self.dist_kind not in ("block", "cyclic"):
            raise ValueError(f"bad dist_kind {self.dist_kind!r}")


@dataclass(frozen=True)
class Reduction:
    """A scalar reduction produced by a loop's kernel.

    The kernel returns partial values per chunk in a dict keyed by ``name``;
    SPF combines them through a lock-protected shared scalar, XHPF through a
    reduce collective — both exactly as Section 2 describes.
    """

    name: str
    op: str = "sum"          # sum | max | min
    dtype: object = np.float64

    def combine(self, a, b):
        if self.op == "sum":
            return a + b
        if self.op == "max":
            return max(a, b)
        if self.op == "min":
            return min(a, b)
        raise ValueError(f"unknown reduction op {self.op}")

    @property
    def identity(self):
        return {"sum": 0.0, "max": -np.inf, "min": np.inf}[self.op]


@dataclass
class SeqBlock:
    """Sequential code: ``kernel(views, env)`` with declared footprints.

    ``cost`` is the charged virtual compute time in seconds (a float or a
    callable of the program's params).  ``master_only`` models code that
    writes — under SPMD every processor executes it redundantly unless its
    writes are to distributed arrays (owner guards).
    """

    name: str
    kernel: Callable
    reads: list = field(default_factory=list)
    writes: list = field(default_factory=list)
    cost: float = 0.0


@dataclass
class ParallelLoop:
    """A parallel DO loop over ``extent`` iterations.

    ``kernel(views, lo, hi)`` performs the chunk's work and returns either
    ``None`` or a dict of reduction partials.  ``align`` names the
    (array, dim) whose distribution drives owner-computes in XHPF; the SPF
    backend schedules iterations ``block`` or ``cyclic`` regardless.
    ``accumulate`` lists arrays that receive scatter-add contributions from
    every chunk (NBF's force buffer) — see the backends for how each
    paradigm realizes that.
    """

    name: str
    extent: int
    kernel: Callable
    reads: list = field(default_factory=list)
    writes: list = field(default_factory=list)
    reductions: list = field(default_factory=list)
    schedule: str = "block"             # block | cyclic
    align: Optional[tuple] = None       # (array_name, dim)
    accumulate: list = field(default_factory=list)
    cost_per_iter: Union[float, Callable[[int], float]] = 0.0
    start: int = 0                      # iteration space is [start, extent)
    merge_cost_per_iter: float = 0.0    # cost of summing accumulation buffers

    def iter_cost(self, count: int) -> float:
        if callable(self.cost_per_iter):
            raise TypeError("callable cost needs explicit iteration list")
        return float(self.cost_per_iter) * count

    def chunk_cost(self, lo: int, hi: int) -> float:
        if callable(self.cost_per_iter):
            return float(sum(self.cost_per_iter(i) for i in range(lo, hi)))
        return float(self.cost_per_iter) * (hi - lo)

    @property
    def irregular(self) -> bool:
        return any(a.irregular for a in self.reads + self.writes)


@dataclass
class TimeLoop:
    """``DO t = 1, count`` around ``body`` (the outer iteration loop).

    ``body`` is either a statement list (same every iteration) or a factory
    ``body(t) -> [stmts]`` for iteration-dependent structure (MGS's
    triangular iteration space builds its statements per outer index).
    """

    name: str
    count: int
    body: Union[list, Callable[[int], list]] = field(default_factory=list)

    def stmts_at(self, t: int) -> list:
        return self.body(t) if callable(self.body) else self.body


@dataclass(frozen=True)
class Mark:
    """A measurement boundary: the paper times only part of each run
    ("the last 100 iterations are timed").  All backends record the mark;
    the harness reports the time and traffic between "start" and "stop"."""

    label: str


Stmt = Union[SeqBlock, ParallelLoop, TimeLoop, Mark]


@dataclass
class Program:
    """A complete application instance (sizes bound at construction)."""

    name: str
    arrays: list
    body: list
    params: dict = field(default_factory=dict)

    def decl(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(f"no array {name!r} in program {self.name!r}")

    def flat_statements(self):
        """Iterate statement instances in execution order (TimeLoops
        unrolled, factories instantiated).  Every backend walks this same
        deterministic schedule, which is what lets fork-join workers match
        the master's dispatches by sequence number."""
        def walk(stmts):
            for s in stmts:
                if isinstance(s, TimeLoop):
                    for t in range(s.count):
                        yield from walk(s.stmts_at(t))
                else:
                    yield s
        yield from walk(self.body)

    def flat_statements_with_window(self):
        """Like :meth:`flat_statements` but pairs each statement with the
        measurement window it falls in — "setup" before ``Mark("start")``,
        "measured" between the marks, "epilogue" after ``Mark("stop")``.
        Mark statements themselves are yielded with the window they open."""
        window = "setup"
        for s in self.flat_statements():
            if isinstance(s, Mark):
                if s.label == "start":
                    window = "measured"
                elif s.label == "stop":
                    window = "epilogue"
            yield s, window

    def parallel_loops(self):
        for s in self.flat_statements():
            if isinstance(s, ParallelLoop):
                yield s

    def validate(self) -> None:
        """Static sanity checks (every access names a declared array...)."""
        names = {a.name for a in self.arrays}
        def check(stmts):
            for s in stmts:
                if isinstance(s, TimeLoop):
                    check(s.stmts_at(0))
                    continue
                if isinstance(s, Mark):
                    continue
                accesses = list(s.reads) + list(s.writes)
                for acc in accesses:
                    if acc.array not in names:
                        raise ValueError(
                            f"{self.name}/{s.name}: access to undeclared "
                            f"array {acc.array!r}")
                if isinstance(s, ParallelLoop):
                    if s.extent <= 0:
                        raise ValueError(f"{s.name}: bad extent {s.extent}")
                    for acc in s.accumulate:
                        if acc not in names:
                            raise ValueError(
                                f"{s.name}: accumulate of undeclared {acc!r}")
        check(self.body)

"""Protocol diagnostics: turn a trace into performance findings.

The paper attributes the DSM's losses to specific mechanisms — false
sharing, lack of data aggregation, separation of synchronization and data.
Given a :class:`~repro.tmk.trace.ProtocolTrace`, these helpers locate those
mechanisms in an actual run:

* :func:`false_sharing_report` — pages written by several processors
  within one barrier epoch (the multiple-writer protocol's work-list),
* :func:`hot_pages` — the pages that cause the most fetch round-trips,
  with the processors involved (aggregation candidates),
* :func:`fault_summary` — per-processor fault/fetch/invalidations totals.

    result = tmk_run(8, program, setup, trace=True)
    print(false_sharing_report(result.trace))
    print(hot_pages(result.trace, top=5))
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.tmk.trace import ProtocolTrace

__all__ = ["false_sharing_report", "hot_pages", "fault_summary",
           "find_false_sharing", "fastpath_summary"]


def fastpath_summary(stats) -> str:
    """Format the coherence fast path's counters (see tmk.faststate).

    ``stats`` is a :class:`~repro.tmk.stats.DsmStats`.  These are
    wall-clock observability numbers only — the fast path never changes
    simulated behaviour — so a low hit rate flags overhead, not a bug.
    """
    total = stats.fastpath_hits + stats.fastpath_misses
    if total == 0:
        return ("fast path: inactive (no ensure_* calls, or disabled via "
                "TMK_FASTPATH=0)")
    rate = stats.fastpath_hits / total
    return (f"fast path: {stats.fastpath_hits}/{total} ensure_* calls "
            f"served by the mask/verdict caches ({rate:.1%} hit rate); "
            f"{stats.region_cache_hits} region->pages memo hits; "
            f"{stats.epoch_bumps} acquire-edge epoch bumps")


def _epochs(trace: ProtocolTrace):
    """Split the event stream at barrier completions (per-processor view:
    a barrier event on any processor advances that processor's epoch)."""
    epoch_of = defaultdict(int)
    for ev in trace.events:
        if ev.kind == "barrier":
            epoch_of[ev.pid] += 1
        yield epoch_of[ev.pid], ev


def find_false_sharing(trace: ProtocolTrace) -> dict:
    """``{page: {epoch: sorted writer pids}}`` for multi-writer epochs."""
    writers: dict = defaultdict(lambda: defaultdict(set))
    for epoch, ev in _epochs(trace):
        if ev.kind == "twin" or (ev.kind == "fault"
                                 and ev.detail.get("mode") == "write"):
            writers[ev.page][epoch].add(ev.pid)
    out: dict = {}
    for page, by_epoch in writers.items():
        multi = {epoch: sorted(pids) for epoch, pids in by_epoch.items()
                 if len(pids) > 1}
        if multi:
            out[page] = multi
    return out


def false_sharing_report(trace: ProtocolTrace, limit: int = 10) -> str:
    shared = find_false_sharing(trace)
    if not shared:
        return ("no false sharing detected: every page had a single "
                "writer per epoch")
    lines = [f"false sharing on {len(shared)} page(s) "
             f"(multiple writers within one epoch):"]
    ranked = sorted(shared.items(),
                    key=lambda kv: -sum(len(p) for p in kv[1].values()))
    for page, by_epoch in ranked[:limit]:
        epochs = len(by_epoch)
        worst = max(by_epoch.items(), key=lambda kv: len(kv[1]))
        lines.append(f"  page {page}: {epochs} multi-writer epoch(s); "
                     f"e.g. epoch {worst[0]} written by {worst[1]}")
    if len(ranked) > limit:
        lines.append(f"  ... and {len(ranked) - limit} more pages")
    return "\n".join(lines)


def hot_pages(trace: ProtocolTrace, top: int = 10) -> str:
    """The pages behind the most fetch round-trips (aggregation targets)."""
    fetches = Counter(ev.page for ev in trace.query(kind="fetch"))
    if not fetches:
        return "no remote fetches occurred"
    lines = [f"hottest pages by fetch round-trips "
             f"(total {sum(fetches.values())} fetches):"]
    for page, count in fetches.most_common(top):
        readers = sorted({ev.pid for ev in trace.query(kind="fetch",
                                                       page=page)})
        lines.append(f"  page {page}: {count} fetches by processors "
                     f"{readers}")
    return "\n".join(lines)


def fault_summary(trace: ProtocolTrace) -> str:
    """Per-processor protocol event totals."""
    rows: dict = defaultdict(Counter)
    for ev in trace.events:
        rows[ev.pid][ev.kind] += 1
    kinds = ["fault", "fetch", "twin", "invalidate", "diff-create",
             "barrier"]
    header = "proc " + " ".join(f"{k:>11s}" for k in kinds)
    lines = [header]
    for pid in sorted(rows):
        lines.append(f"p{pid:<4d}" + " ".join(
            f"{rows[pid].get(k, 0):11d}" for k in kinds))
    return "\n".join(lines)

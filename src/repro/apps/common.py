"""Shared application plumbing: specs, registry, signatures.

A *signature* is a small dict of floats summarizing a run's numeric output
(array checksums plus reduction scalars).  Hand-coded variants return
per-processor partial signatures (sums over owned data); the harness adds
them up and compares against the sequential oracle with a relative
tolerance (chunked float summation reorders rounding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.compiler.ir import (Access, Full, ParallelLoop, Program,
                               Reduction, Span)

__all__ = ["AppSpec", "APP_REGISTRY", "get_app", "register",
           "append_signature_loops", "partial_signature",
           "combine_signatures", "signatures_close"]

APP_REGISTRY: dict = {}


@dataclass
class AppSpec:
    """Everything the harness needs to run one application in all variants."""

    name: str
    regular: bool
    build_program: Callable[[dict], Program]
    hand_tmk_setup: Callable      # (space, params) -> None
    hand_tmk: Callable            # (tmk, params) -> partial signature dict
    hand_pvme: Callable           # (pvme, params) -> partial signature dict
    presets: dict = field(default_factory=dict)   # name -> params dict
    signature_arrays: list = field(default_factory=list)
    spf_opt_options: Optional[Callable] = None
    """() -> SpfOptions reproducing the paper's hand optimizations."""
    notes: str = ""

    def params(self, preset: str = "test") -> dict:
        if preset not in self.presets:
            raise KeyError(f"{self.name}: unknown preset {preset!r} "
                           f"(have {sorted(self.presets)})")
        return dict(self.presets[preset])


def register(spec: AppSpec) -> AppSpec:
    APP_REGISTRY[spec.name] = spec
    return spec


def get_app(name: str) -> AppSpec:
    return APP_REGISTRY[name]


# ---------------------------------------------------------------------- #
# signatures

def append_signature_loops(program: Program, arrays: list) -> Program:
    """Add post-``stop`` checksum loops over ``arrays``.

    They run outside the measured window, so the extra faults they cause do
    not perturb the reproduced numbers, and they make every IR backend
    report comparable ``sig_<array>`` scalars.
    """
    for name in arrays:
        decl = program.decl(name)

        def kernel(views, lo, hi, _name=name):
            return {f"sig_{_name}": abs_sum(views[_name][lo:hi])}

        program.body.append(ParallelLoop(
            name=f"__sig_{name}",
            extent=decl.shape[0],
            kernel=kernel,
            reads=[Access(name, (Span(),) + tuple(
                Full() for _ in decl.shape[1:]))],
            reductions=[Reduction(f"sig_{name}")],
        ))
    return program


def abs_sum(data: np.ndarray) -> float:
    """Cancellation-proof checksum: sum of |real| + |imag| in float64.

    Plain sums of symmetric fields (velocities, forces) cancel to ~0 and
    make relative comparison meaningless; absolute sums stay O(n).
    """
    arr = np.asarray(data)
    if np.iscomplexobj(arr):
        return float(np.sum(np.abs(arr.real), dtype=np.float64)
                     + np.sum(np.abs(arr.imag), dtype=np.float64))
    return float(np.sum(np.abs(arr), dtype=np.float64))


def partial_signature(arrays: dict, lo: int, hi: int) -> dict:
    """Hand-variant helper: ``sig_*`` checksums over owned rows [lo, hi)."""
    return {f"sig_{name}": abs_sum(data[lo:hi])
            for name, data in arrays.items()}


def combine_signatures(parts: list) -> dict:
    """Sum per-processor partial signatures (skipping Nones)."""
    out: dict = {}
    for part in parts:
        if not part:
            continue
        for key, val in part.items():
            out[key] = out.get(key, 0.0) + val
    return out


def signatures_close(a: dict, b: dict, rtol: float = 1e-4) -> bool:
    """Compare signature dicts with relative tolerance.

    Non-finite values never compare equal (NaN would otherwise slip
    through the ``>`` comparison and mask a corrupted run).
    """
    if set(a) != set(b):
        return False
    for key in a:
        x, y = a[key], b[key]
        if not (np.isfinite(x) and np.isfinite(y)):
            return False
        scale = max(abs(x), abs(y), 1e-12)
        if abs(x - y) > rtol * scale:
            return False
    return True

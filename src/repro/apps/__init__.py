"""The six applications of the paper.

Regular access patterns: :mod:`~repro.apps.jacobi` (iterative PDE solver),
:mod:`~repro.apps.shallow` (NCAR shallow-water benchmark),
:mod:`~repro.apps.mgs` (Modified Gramm-Schmidt orthonormalization),
:mod:`~repro.apps.fft3d` (NAS 3-D FFT PDE solver).  Irregular:
:mod:`~repro.apps.igrid` (9-point stencil through a run-time indirection
map), :mod:`~repro.apps.nbf` (non-bonded force kernel of a molecular
dynamics code).

Each module provides one :class:`~repro.apps.common.AppSpec` exposing

* ``build_program(params)`` — the IR description that SPF, XHPF and the
  sequential oracle all consume,
* ``hand_tmk`` — the hand-coded TreadMarks program,
* ``hand_pvme`` — the hand-coded PVMe message-passing program,
* size presets: ``paper`` (Table 1 sizes), ``bench`` (scaled down, same
  shape), ``test`` (tiny; CI-speed).

All variants of an app share the same numpy kernels, so one sequential run
is the correctness oracle for the other four.
"""

from repro.apps.common import APP_REGISTRY, AppSpec, get_app
from repro.apps import jacobi, shallow, mgs, fft3d, igrid, nbf  # registers

__all__ = ["APP_REGISTRY", "AppSpec", "get_app",
           "jacobi", "shallow", "mgs", "fft3d", "igrid", "nbf"]

"""`FleetService` — the multi-host front tier over ``repro-serve/1``.

One :class:`~repro.serve.RunService` scales to one host's cores.  The
fleet tier is the next rung: it presents the same ``run`` / ``run_batch``
/ ``stream_batch`` / ``stats`` surface but dispatches each
:class:`~repro.api.RunRequest` to one of N remote ``repro serve --tcp``
hosts through :class:`~repro.serve.wire.WireClient` — the PR 8 scheduler
ported up one level, from workers-behind-pipes to hosts-behind-sockets.

Scheduling mirrors the in-process pool:

* the fleet mirrors each host's compiled-program caches as a per-host
  **warm-key set** keyed on :meth:`RunRequest.cache_key` (LRU-capped at
  ``cache_entries``); a repeat key routes to its warm host (an
  ``affinity_hit``), a cold key to the least-loaded idle host;
* an idle host facing only warm-elsewhere work **steals** the oldest
  backlog entry once the queue reaches ``steal_threshold`` — affinity
  never serializes a batch;
* ``max_backlog`` admission control refuses overflow requests at once
  with structured ``error_kind="Rejected"`` results.

Work is shipped in per-host **chunks** of up to the host's worker count,
one in-flight chunk per host, streamed back per completion — so each
remote pool stays saturated while the fleet keeps enough backlog loose
for affinity routing and stealing.

What a network tier needs that the in-process pool didn't:

* **health probes** — :meth:`probe` round-trips a ``stats`` op per host;
  dead hosts are re-probed (and re-admitted) at the next batch;
* **bounded retry with backoff** — connect/send failures retry
  ``retries`` times with exponential backoff before the host is declared
  lost;
* **requeue-at-head** — when a host dies mid-chunk, the chunk's
  not-yet-completed requests go back to the *head* of the fleet backlog
  (mirroring the pool's dead-worker requeue): never a silent drop, never
  a hang, and nothing runs twice because
  :meth:`WireClient.stream_batch` marks exactly which indexes completed;
* **structured exhaustion** — when every host is gone (or admission is
  refused) outstanding requests fail fast as ``error_kind="HostLost"``
  (``"Rejected"``) results, not exceptions and not timeouts.

Counters surface on ``stats()["fleet"]`` (per-host and fleet-wide
``affinity_hits``/``steals``/``requeues``/``hosts_lost``/``retries``)
and on every :class:`BatchResult` — where, at this level, ``crashes``
counts *host losses* during the batch.

Use it like the pool::

    with FleetService(["127.0.0.1:7591", "127.0.0.1:7592"]) as fleet:
        batch = fleet.run_batch(requests)     # request order + counters
        for idx, res in fleet.stream(requests):
            ...                               # completion order
"""

from __future__ import annotations

import queue as _queue
import threading
import time as _time
from collections import OrderedDict, deque
from typing import Iterable, List, Optional, Tuple

from repro.api.types import BatchResult, RunRequest, RunResult
from repro.serve.wire import WireClient, WireConnectionLost

__all__ = ["FleetService", "parse_host", "DEFAULT_RETRIES",
           "DEFAULT_BACKOFF_S"]

#: connect/send attempts beyond the first before a host is declared lost
DEFAULT_RETRIES = 3

#: first retry delay; doubles per attempt, capped at DEFAULT_BACKOFF_MAX_S
DEFAULT_BACKOFF_S = 0.05
DEFAULT_BACKOFF_MAX_S = 2.0

_WAIT_S = 0.05     # scheduler re-check period while a host has no work


def parse_host(spec) -> Tuple[str, int]:
    """``"HOST:PORT"`` (or a ``(host, port)`` pair) -> ``(host, port)``."""
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        return str(spec[0]), int(spec[1])
    host, sep, port = str(spec).rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"host spec {spec!r} is not 'HOST:PORT'")
    return host, int(port)


class _Host:
    """One remote ``repro serve --tcp`` endpoint and its fleet-side state."""

    def __init__(self, host: str, port: int):
        self.host, self.port = host, port
        self.label = f"{host}:{port}"
        self.client: Optional[WireClient] = None
        self.workers = 0               # remote pool size, from hello
        self.alive = False
        self.runs = 0                  # requests this host retired
        self.affinity_hits = 0
        self.steals = 0
        self.requeues = 0              # requests requeued off this host
        self.reconnects = 0            # successful revivals
        self.last_rtt_ms: Optional[float] = None

    def snapshot(self) -> dict:
        return {"alive": self.alive, "workers": self.workers,
                "runs": self.runs, "affinity_hits": self.affinity_hits,
                "steals": self.steals, "requeues": self.requeues,
                "reconnects": self.reconnects,
                "last_rtt_ms": self.last_rtt_ms}


class FleetService:
    """Shard batches across N remote ``repro serve --tcp`` hosts.

    ``hosts`` is a list of ``"HOST:PORT"`` specs (or pairs).  At least
    one host must be reachable at construction (each gets the full
    bounded-retry treatment); unreachable ones are kept on the roster
    and re-probed before every batch.

    The service surface matches :class:`~repro.serve.RunService` — the
    wire layer (``python -m repro fleet``) and
    :func:`repro.eval.parallel.run_requests` dispatch against either
    interchangeably.
    """

    def __init__(self, hosts: Iterable, timeout: float = 300.0,
                 retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF_S,
                 cache_entries: int = 64,
                 steal_threshold: int = 2,
                 max_backlog: Optional[int] = None):
        specs = [parse_host(h) for h in hosts]
        if not specs:
            raise ValueError("FleetService needs at least one host")
        if steal_threshold < 1:
            raise ValueError("steal_threshold must be at least 1")
        if max_backlog is not None and max_backlog < 1:
            raise ValueError("max_backlog must be at least 1 (or None "
                             "for unbounded admission)")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.cache_entries = cache_entries
        self.steal_threshold = steal_threshold
        self.max_backlog = max_backlog
        self._hosts = [_Host(h, p) for h, p in specs]
        self._cond = threading.Condition()
        self._warm: dict = {}          # host label -> OrderedDict of keys
        self._affinity_hits = 0
        self._steals = 0
        self._rejections = 0
        self._requeues = 0
        self._hosts_lost = 0
        self._retry_attempts = 0       # failed connect/send attempts
        self._closed = False
        # per-stream state (single-consumer, like RunService.stream)
        self._pending: dict = {}       # seq -> request doc
        self._keys: dict = {}          # seq -> cache_key
        self._backlog: deque = deque()
        self._inflight: dict = {}      # seq -> host label
        self._index_of: dict = {}      # seq -> batch index
        self._done_q: _queue.Queue = _queue.Queue()
        self._next_seq = 0
        for host in self._hosts:
            self._connect(host)
        if not self._live():
            raise ConnectionError(
                "no fleet host reachable: "
                + ", ".join(h.label for h in self._hosts))

    # ------------------------------------------------------------------ #
    # connection management: probes, bounded retry, backoff

    def _live(self) -> List[_Host]:
        return [h for h in self._hosts if h.alive]

    def _connect(self, host: _Host) -> bool:
        """Bounded retry-with-backoff connect; marks the host's fate."""
        delay = self.backoff
        for attempt in range(self.retries + 1):
            if self._closed:
                return False
            try:
                t0 = _time.perf_counter()
                client = WireClient(host.host, host.port,
                                    timeout=self.timeout)
                host.last_rtt_ms = round(
                    1000.0 * (_time.perf_counter() - t0), 3)
                if host.client is not None:
                    host.reconnects += 1
                host.client = client
                host.workers = int(client.hello.get("workers", 1)) or 1
                host.alive = True
                return True
            except (OSError, ConnectionError, RuntimeError):
                self._retry_attempts += 1
                if attempt < self.retries:
                    _time.sleep(min(delay, DEFAULT_BACKOFF_MAX_S))
                    delay *= 2
        host.alive = False
        host.client = None
        return False

    def probe(self) -> dict:
        """Health-check every host: a ``stats`` round-trip per live host,
        a (bounded-retry) reconnect attempt per dead one.  Returns the
        per-host health document."""
        for host in self._hosts:
            if host.alive and host.client is not None:
                try:
                    t0 = _time.perf_counter()
                    host.client.stats()
                    host.last_rtt_ms = round(
                        1000.0 * (_time.perf_counter() - t0), 3)
                    continue
                except (ConnectionError, OSError, RuntimeError):
                    self._drop_host(host)
            self._connect(host)
        return {h.label: h.snapshot() for h in self._hosts}

    def _drop_host(self, host: _Host) -> None:
        """Forget a dead host's connection and warm-key mirror."""
        host.alive = False
        if host.client is not None:
            host.client.close()      # idempotent, safe on a dead socket
            host.client = None
        self._warm.pop(host.label, None)

    # ------------------------------------------------------------------ #
    # scheduling: affinity, stealing, requeue

    def _note_warm(self, host: _Host, key) -> None:
        if key is None:
            return
        warm = self._warm.setdefault(host.label, OrderedDict())
        warm[key] = None
        warm.move_to_end(key)
        while len(warm) > self.cache_entries:
            warm.popitem(last=False)

    def _select(self, host: _Host) -> list:
        """Pick this idle host's next chunk from the backlog (locked).

        Oldest-first, mirroring :meth:`RunService._pick` one level up:
        keys warm here first (``affinity_hit`` each), then keys warm on
        *no* live host, then — only when the backlog has reached
        ``steal_threshold`` — the oldest warm-elsewhere entry (a
        ``steal``).  Deferral cannot stall: the warm host is live and
        busy, and its completion (or its death, which clears its warm
        set) re-triggers selection.
        """
        limit = max(1, host.workers)
        warm = self._warm.get(host.label, ())
        chunk = []
        for seq in self._backlog:
            if len(chunk) >= limit:
                break
            if self._keys.get(seq) in warm:
                chunk.append(seq)
                self._affinity_hits += 1
                host.affinity_hits += 1
        if len(chunk) < limit:
            live_warm = [self._warm.get(h.label, ())
                         for h in self._live()]
            for seq in self._backlog:
                if len(chunk) >= limit:
                    break
                if seq in chunk:
                    continue
                key = self._keys.get(seq)
                if not any(key in w for w in live_warm):
                    chunk.append(seq)
        if not chunk and len(self._backlog) >= self.steal_threshold:
            chunk.append(self._backlog[0])
            self._steals += 1
            host.steals += 1
        for seq in chunk:
            self._backlog.remove(seq)
            self._inflight[seq] = host.label
            # record the key optimistically: the host compiles it on
            # arrival, and duplicate keys later in the backlog route here
            self._note_warm(host, self._keys.get(seq))
        return chunk

    def _take_chunk(self, host: _Host) -> Optional[list]:
        """Block until this host has work, or the batch is retired."""
        with self._cond:
            while True:
                if not self._pending or self._closed or not host.alive:
                    self._cond.notify_all()
                    return None
                chunk = self._select(host)
                if chunk:
                    return chunk
                self._cond.wait(_WAIT_S)

    def _complete(self, seq: int, result: RunResult) -> None:
        with self._cond:
            if seq not in self._pending:
                return
            del self._pending[seq]
            self._keys.pop(seq, None)
            self._inflight.pop(seq, None)
            self._done_q.put((self._index_of[seq], result))
            self._cond.notify_all()

    def _host_failure(self, host: _Host, lost: list) -> None:
        """A chunk died with its host: requeue-at-head, retry, or give up.

        ``lost`` is the chunk's not-yet-completed seqs, in chunk order.
        They go back to the *head* of the backlog (the pool's dead-worker
        contract, one level up) so another host picks them up first —
        never a silent drop.  The host then gets one bounded-retry
        reconnect; failure makes the loss permanent, and if no host
        remains the whole backlog fails fast as ``HostLost`` results.
        """
        with self._cond:
            self._drop_host(host)
            for seq in reversed(lost):
                if seq in self._pending:
                    self._inflight.pop(seq, None)
                    self._backlog.appendleft(seq)
                    self._requeues += 1
                    host.requeues += 1
            self._cond.notify_all()
        if not self._closed and self._connect(host):
            with self._cond:
                self._cond.notify_all()
            return
        with self._cond:
            self._hosts_lost += 1
            if not self._live():
                self._fail_outstanding(
                    f"no fleet host remains (last lost: {host.label} "
                    f"after {self.retries} retry(ies))")
            self._cond.notify_all()

    def _fail_outstanding(self, error: str) -> None:
        """Fail every un-retired request as a structured HostLost (locked
        by the caller)."""
        for seq in list(self._pending):
            doc = self._pending.pop(seq)
            self._keys.pop(seq, None)
            self._inflight.pop(seq, None)
            self._done_q.put((self._index_of[seq], RunResult.failure(
                RunRequest.from_json(doc), error=error,
                error_kind="HostLost")))
        self._backlog.clear()

    def _host_loop(self, host: _Host) -> None:
        """One thread per host: pull chunks, stream them over the wire."""
        while True:
            chunk = self._take_chunk(host)
            if chunk is None:
                return
            docs = [self._pending.get(seq) for seq in chunk]
            if any(d is None for d in docs):     # retired underneath us
                continue
            completed: set = set()
            try:
                for kind, i, payload in host.client.stream_batch(docs):
                    if kind == "result":
                        seq = chunk[i]
                        completed.add(seq)
                        host.runs += 1
                        self._complete(seq, payload)
            except (WireConnectionLost, ConnectionError, OSError,
                    RuntimeError):
                self._host_failure(
                    host, [s for s in chunk if s not in completed])

    # ------------------------------------------------------------------ #
    # the service surface (same shape as RunService)

    @staticmethod
    def _as_doc(request) -> dict:
        if isinstance(request, RunRequest):
            return request.to_json()
        return dict(request)

    def stream(self, requests: Iterable):
        """Yield ``(index, RunResult)`` in completion order.

        Single-consumer, like :meth:`RunService.stream` (the wire layer
        serializes access).  Dead hosts are re-probed before the batch;
        ``max_backlog`` overflow yields immediate ``Rejected`` results.
        """
        if self._closed:
            raise RuntimeError("FleetService is closed")
        docs = [self._as_doc(r) for r in requests]
        for host in self._hosts:
            if not host.alive:
                self._connect(host)
        if not self._live():
            raise ConnectionError(
                "no fleet host reachable: "
                + ", ".join(h.label for h in self._hosts))
        rejected: list = []
        with self._cond:
            for doc in docs:
                seq = self._next_seq
                self._next_seq += 1
                index = len(self._index_of)
                self._index_of[seq] = index
                if self.max_backlog is not None and \
                        len(self._backlog) + len(self._inflight) \
                        >= self.max_backlog:
                    self._rejections += 1
                    rejected.append((index, RunResult.failure(
                        RunRequest.from_json(doc),
                        error=(f"admission refused: {self.max_backlog} "
                               f"request(s) already in flight (the "
                               f"fleet's max_backlog cap)"),
                        error_kind="Rejected")))
                    continue
                self._pending[seq] = doc
                self._keys[seq] = RunRequest.from_json(doc).cache_key()
                self._backlog.append(seq)
            expected = len(self._pending)
            self._cond.notify_all()
        threads = [threading.Thread(target=self._host_loop, args=(host,),
                                    name=f"repro-fleet-{host.label}",
                                    daemon=True)
                   for host in self._live()]
        for t in threads:
            t.start()
        try:
            for index, result in rejected:
                yield index, result
            emitted = 0
            while emitted < expected:
                try:
                    index, result = self._done_q.get(timeout=1.0)
                except _queue.Empty:
                    # watchdog: every host thread gone with work left
                    # can only mean an unexpected tear-down — fail fast
                    # rather than hang (the HostLost contract)
                    if not any(t.is_alive() for t in threads):
                        with self._cond:
                            self._fail_outstanding(
                                "fleet dispatch stopped with requests "
                                "outstanding")
                    continue
                yield index, result
                emitted += 1
        finally:
            with self._cond:
                self._pending.clear()
                self._keys.clear()
                self._backlog.clear()
                self._inflight.clear()
                self._index_of.clear()
                self._cond.notify_all()
            for t in threads:
                t.join(timeout=5.0)
            self._done_q = _queue.Queue()

    def counters(self) -> dict:
        """Monotonic counters, in the wire layer's shape — ``crashes``
        counts *host losses* at this level."""
        return {"crashes": self._hosts_lost,
                "affinity_hits": self._affinity_hits,
                "steals": self._steals,
                "rejections": self._rejections}

    def live_workers(self) -> int:
        """Total remote workers behind the live hosts."""
        return sum(h.workers for h in self._live())

    @property
    def workers(self) -> int:
        return self.live_workers()

    def run(self, request, id: Optional[object] = None) -> RunResult:
        for _index, result in self.stream([request]):
            return result
        raise RuntimeError("fleet returned no result")   # unreachable

    def run_batch(self, requests: Iterable) -> BatchResult:
        """Run a batch; return ordered results plus fleet counters."""
        docs = [self._as_doc(r) for r in requests]
        t0 = _time.perf_counter()
        before = self.counters()
        results: list = [None] * len(docs)
        for index, result in self.stream(docs):
            results[index] = result
        wall = _time.perf_counter() - t0
        delta = {k: v - before[k] for k, v in self.counters().items()}
        return BatchResult(
            results=tuple(results),
            wall_s=round(wall, 6),
            workers=self.live_workers(),
            cache_hits=sum(1 for r in results if r.cache_hit),
            cache_misses=sum(1 for r in results
                             if r.cache_hit is False),
            crashes=delta["crashes"],
            affinity_hits=delta["affinity_hits"],
            steals=delta["steals"],
            rejected=delta["rejections"])

    def stream_batch(self, requests: Iterable,
                     id: Optional[object] = None):
        """:meth:`WireClient.stream_batch`-shaped events: ``("result",
        index, RunResult)`` per completion, then ``("batch", None,
        BatchResult)``."""
        docs = [self._as_doc(r) for r in requests]
        t0 = _time.perf_counter()
        before = self.counters()
        results: list = [None] * len(docs)
        for index, result in self.stream(docs):
            results[index] = result
            yield ("result", index, result)
        delta = {k: v - before[k] for k, v in self.counters().items()}
        yield ("batch", None, BatchResult(
            results=tuple(results),
            wall_s=round(_time.perf_counter() - t0, 6),
            workers=self.live_workers(),
            cache_hits=sum(1 for r in results if r.cache_hit),
            cache_misses=sum(1 for r in results
                             if r.cache_hit is False),
            crashes=delta["crashes"],
            affinity_hits=delta["affinity_hits"],
            steals=delta["steals"],
            rejected=delta["rejections"]))

    def submit(self, requests: Iterable) -> BatchResult:
        return self.run_batch(requests)

    # ------------------------------------------------------------------ #
    # observability / lifecycle

    @staticmethod
    def _key_label(key: tuple) -> str:
        app, variant, preset, nprocs, mode = key[:5]
        return f"{app}:{variant}:{preset}:n{nprocs}:{mode}"

    def stats(self) -> dict:
        """Local fleet counters (no wire round-trips; :meth:`probe` does
        those)."""
        return {
            "workers": self.live_workers(),
            "crashes": self._hosts_lost,
            "fleet": {
                "hosts": {h.label: h.snapshot() for h in self._hosts},
                "live_hosts": len(self._live()),
                "affinity_hits": self._affinity_hits,
                "steals": self._steals,
                "rejections": self._rejections,
                "requeues": self._requeues,
                "hosts_lost": self._hosts_lost,
                "retries": self._retry_attempts,
                "steal_threshold": self.steal_threshold,
                "max_backlog": self.max_backlog,
                "warm_keys": {label: [self._key_label(k) for k in warm]
                              for label, warm
                              in sorted(self._warm.items())},
            },
        }

    def close(self) -> None:
        """Close every host connection (idempotent; the remote services
        keep running — a fleet front going away must not take its hosts
        with it)."""
        if self._closed:
            return
        self._closed = True
        with self._cond:
            self._cond.notify_all()
        for host in self._hosts:
            self._drop_host(host)

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Tests for the loop-nest IR (repro.compiler.ir)."""

import numpy as np
import pytest

from repro.compiler.ir import (Access, ArrayDecl, Full, Irregular, Mark,
                               ParallelLoop, Point, Program, Reduction,
                               SeqBlock, Span, TimeLoop)


def test_span_resolves_with_clipping():
    s = Span(-1, 1)
    assert s.resolve(0, 4, 16) == slice(0, 5)
    assert s.resolve(12, 16, 16) == slice(11, 16)
    assert Span().resolve(2, 6, 16) == slice(2, 6)


def test_full_and_point():
    assert Full().resolve(3, 5, 10) == slice(0, 10)
    assert Point(4).resolve(0, 0, 10) == 4
    assert Point(-1).resolve(0, 0, 10) == 9
    assert Point(lambda lo, hi: lo + 1).resolve(5, 9, 10) == 6


def test_access_resolve_fills_trailing_dims():
    acc = Access("a", (Span(),))
    assert acc.resolve(2, 4, (8, 16)) == (slice(2, 4), slice(0, 16))


def test_access_resolve_rank_check():
    acc = Access("a", (Span(), Full(), Full()))
    with pytest.raises(ValueError):
        acc.resolve(0, 1, (8,))


def test_irregular_access_flagged():
    acc = Access("a", Irregular(lambda v, lo, hi: np.array([0])))
    assert acc.irregular
    with pytest.raises(TypeError):
        acc.resolve(0, 1, (8,))


def test_array_decl_normalizes_shape():
    d = ArrayDecl("a", (np.int64(4), 8.0 if False else 8))
    assert d.shape == (4, 8)


def test_array_decl_rejects_bad_dist_kind():
    with pytest.raises(ValueError):
        ArrayDecl("a", (4,), dist_kind="diagonal")


def test_reduction_ops():
    assert Reduction("r", "sum").combine(2, 3) == 5
    assert Reduction("r", "max").combine(2, 3) == 3
    assert Reduction("r", "min").combine(2, 3) == 2
    assert Reduction("r", "sum").identity == 0.0
    assert Reduction("r", "max").identity == -np.inf
    with pytest.raises(ValueError):
        Reduction("r", "xor").combine(1, 2)


def test_parallel_loop_chunk_cost():
    loop = ParallelLoop("l", 10, lambda v, lo, hi: None, cost_per_iter=2.0)
    assert loop.chunk_cost(3, 7) == 8.0
    loop2 = ParallelLoop("l", 10, lambda v, lo, hi: None,
                         cost_per_iter=lambda i: float(i))
    assert loop2.chunk_cost(2, 5) == 2 + 3 + 4


def test_timeloop_static_and_factory_bodies():
    loop_a = ParallelLoop("a", 4, lambda v, lo, hi: None)
    static = TimeLoop("t", 3, [loop_a])
    assert static.stmts_at(0) == [loop_a]
    factory = TimeLoop("t", 3, lambda t: [ParallelLoop(f"l{t}", 4,
                                                       lambda v, lo, hi: None)])
    assert factory.stmts_at(2)[0].name == "l2"


def _tiny_program(**kw):
    return Program(
        "p",
        arrays=[ArrayDecl("a", (8, 8))],
        body=[SeqBlock("init", lambda v: None,
                       writes=[Access("a", (Full(), Full()))]),
              Mark("start"),
              TimeLoop("t", 2, [ParallelLoop(
                  "work", 8, lambda v, lo, hi: None,
                  reads=[Access("a", (Span(),))],
                  writes=[Access("a", (Span(),))])]),
              Mark("stop")],
        **kw)


def test_flat_statements_unrolls_timeloops():
    prog = _tiny_program()
    stmts = list(prog.flat_statements())
    names = [getattr(s, "name", getattr(s, "label", None)) for s in stmts]
    assert names == ["init", "start", "work", "work", "stop"]


def test_parallel_loops_iterator():
    prog = _tiny_program()
    assert len(list(prog.parallel_loops())) == 2


def test_decl_lookup():
    prog = _tiny_program()
    assert prog.decl("a").shape == (8, 8)
    with pytest.raises(KeyError):
        prog.decl("zzz")


def test_validate_catches_undeclared_access():
    prog = Program(
        "bad", arrays=[ArrayDecl("a", (4,))],
        body=[SeqBlock("s", lambda v: None,
                       reads=[Access("ghost", (Full(),))])])
    with pytest.raises(ValueError, match="ghost"):
        prog.validate()


def test_validate_catches_bad_extent():
    prog = Program(
        "bad", arrays=[ArrayDecl("a", (4,))],
        body=[ParallelLoop("l", 0, lambda v, lo, hi: None)])
    with pytest.raises(ValueError, match="extent"):
        prog.validate()


def test_validate_catches_undeclared_accumulate():
    prog = Program(
        "bad", arrays=[ArrayDecl("a", (4,))],
        body=[ParallelLoop("l", 4, lambda v, lo, hi: None,
                           accumulate=["ghost"])])
    with pytest.raises(ValueError, match="accumulate"):
        prog.validate()


# ---------------------------------------------------------------------- #
# structured footprint errors and measurement windows (lint plumbing)

def test_footprint_error_rank_fields():
    from repro.compiler.ir import FootprintError
    acc = Access("a", (Span(), Full(), Full()))
    with pytest.raises(FootprintError) as info:
        acc.resolve(0, 1, (8, 8))
    err = info.value
    assert err.array == "a" and err.kind == "rank"
    assert err.region_rank == 3 and err.array_rank == 2
    assert "a:" in str(err)


def test_footprint_error_bounds_fields():
    from repro.compiler.ir import FootprintError
    acc = Access("a", (Point(12),))
    with pytest.raises(FootprintError) as info:
        acc.resolve(0, 0, (8,))
    err = info.value
    assert err.kind == "bounds" and err.dim == 0
    assert err.index == 12 and err.extent == 8
    # a FootprintError is still a ValueError for existing callers
    assert isinstance(err, ValueError)


def test_flat_statements_with_window():
    loop = ParallelLoop("l", 4, lambda v, lo, hi: None)
    init = SeqBlock("init", lambda v: None)
    tail = SeqBlock("tail", lambda v: None)
    prog = Program("p", arrays=[ArrayDecl("a", (4,))],
                   body=[init, Mark("start"),
                         TimeLoop("t", 2, [loop]),
                         Mark("stop"), tail])
    seen = [(s.name if not isinstance(s, Mark) else f"mark:{s.label}", w)
            for s, w in prog.flat_statements_with_window()]
    assert ("init", "setup") in seen
    assert seen.count(("l", "measured")) == 2
    assert ("tail", "epilogue") in seen

"""Schedule-fuzzing race-check harness over the paper's applications.

The protocol proof obligations are: (a) every legal interleaving of the
DSM protocol computes the same answer, and (b) no application contains a
data race under the happens-before order the synchronization operations
induce.  :func:`racecheck_app` discharges both empirically: it runs one
(application, DSM variant) pair under ``K`` different ``schedule_seed``
values — each seed permutes same-timestamp event ordering in the
simulator, i.e. picks a distinct legal interleaving — with the
:class:`~repro.tmk.racecheck.RaceMonitor` attached, then

* asserts the coherent final contents of every application array are
  **bit-identical across all seeds** (hashes of a post-run, barrier-
  ordered readback on processor 0),
* compares those arrays against the sequential oracle (bitwise, with an
  ``allclose`` fallback for arrays whose combining order legitimately
  differs from the sequential one, e.g. staged accumulations),
* compares reduction scalars against the oracle with the usual
  signature tolerance (lock-folded reductions combine in schedule
  order, so scalars are *close*, not bit-stable, across seeds), and
* reports every true race and false-sharing pair the monitor found.

Command line: ``python -m repro racecheck <app> <variant> --seeds K``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.api.registry import DSM_VARIANTS as _DSM_VARIANTS
from repro.apps.common import combine_signatures, get_app, signatures_close
from repro.compiler import depend
from repro.compiler.seq import run_sequential
from repro.compiler.spf import SpfOptions, compile_spf
from repro.sim.machine import MachineModel
from repro.tmk.api import tmk_run

__all__ = ["SeedRun", "RacecheckReport", "racecheck_app",
           "CrossCheckReport", "cross_check_app",
           "INTERNAL_PREFIXES", "READBACK_SOURCE"]

#: runtime-internal shared arrays, excluded from the numeric readback
INTERNAL_PREFIXES = ("__red_", "__acc_", "__fj_")

#: source tag of the harness's own coherent readback accesses
READBACK_SOURCE = "racecheck:readback"


@dataclass
class SeedRun:
    """One application run under one schedule seed."""

    seed: Optional[int]
    time: float
    races: object                     # RaceCheckResult
    hashes: dict                      # array name -> sha256 of coherent bytes
    signature: dict                   # reduction scalars
    scalars_close: bool = True

    @property
    def n_true(self) -> int:
        return len(self.races.true_races)


@dataclass
class RacecheckReport:
    """Verdict of :func:`racecheck_app` over all seeds."""

    app: str
    variant: str
    nprocs: int
    preset: str
    runs: list = field(default_factory=list)       # SeedRun per seed
    deterministic: bool = True      # array hashes identical across seeds
    arrays_exact: list = field(default_factory=list)
    arrays_close: list = field(default_factory=list)
    arrays_wrong: list = field(default_factory=list)
    true_races: list = field(default_factory=list)     # union across seeds
    false_sharing: list = field(default_factory=list)  # union across seeds

    @property
    def all_exact(self) -> bool:
        """Every compared array matched the oracle bit-for-bit."""
        return not self.arrays_close and not self.arrays_wrong

    @property
    def ok(self) -> bool:
        return (not self.true_races and self.deterministic
                and not self.arrays_wrong
                and all(r.scalars_close for r in self.runs))

    def format(self, lookup: Optional[dict] = None) -> str:
        seeds = [r.seed for r in self.runs]
        lines = [f"racecheck {self.app}/{self.variant} "
                 f"n={self.nprocs} preset={self.preset} seeds={seeds}"]
        lines.append(
            f"  numerics: {'bit-identical' if self.deterministic else 'DIVERGED'}"
            f" across {len(self.runs)} seed(s); vs sequential oracle: "
            f"{len(self.arrays_exact)} array(s) bit-exact, "
            f"{len(self.arrays_close)} close, "
            f"{len(self.arrays_wrong)} WRONG"
            + ("" if not self.arrays_wrong
               else " (" + ", ".join(self.arrays_wrong) + ")"))
        bad_scalars = [r.seed for r in self.runs if not r.scalars_close]
        lines.append("  scalars: within tolerance of oracle"
                     if not bad_scalars else
                     f"  scalars: OUT OF TOLERANCE for seed(s) {bad_scalars}")
        lines.append(f"  races: {len(self.true_races)} true race(s), "
                     f"{len(self.false_sharing)} false-sharing pair(s)")
        for f in self.true_races:
            lines.append("    " + f.describe(lookup))
        for f in self.false_sharing[:8]:
            lines.append("    " + f.describe(lookup))
        if len(self.false_sharing) > 8:
            lines.append(f"    ... {len(self.false_sharing) - 8} more "
                         f"false-sharing pair(s)")
        lines.append(f"  verdict: {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _hash(arr: np.ndarray) -> str:
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(str(arr.dtype).encode())
    h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _wrap_with_readback(body):
    """Append a barrier-ordered coherent readback of every application
    array on processor 0.  The final barrier happens-after every program
    access, so the readback itself can never introduce a race."""

    def main(tmk):
        out = body(tmk)
        tmk.barrier()
        arrays = {}
        if tmk.pid == 0:
            for handle in tmk.world.space.handles():
                if handle.name.startswith(INTERNAL_PREFIXES):
                    continue
                view = tmk.array(handle.name).read(source=READBACK_SOURCE)
                arrays[handle.name] = np.array(view, copy=True)
        return out, arrays

    return main


def _merge_findings(report: RacecheckReport, races, seen: set) -> None:
    """Union race findings across seeds, deduplicated by description."""
    for f in list(races.true_races) + list(races.false_sharing):
        key = f.describe()
        if key in seen:
            continue
        seen.add(key)
        (report.true_races if f.kind == "true-race"
         else report.false_sharing).append(f)


def racecheck_app(app: str, variant: str = "spf",
                  seeds: Union[int, Sequence] = 5,
                  nprocs: int = 8, preset: str = "test",
                  model: Optional[MachineModel] = None,
                  gc_epochs: Optional[int] = 8,
                  jobs: int = 1, service=None,
                  fleet: Optional[list] = None) -> RacecheckReport:
    """Race-check ``app`` under ``variant`` across ``seeds`` interleavings.

    ``seeds`` is a count (seeds ``0..K-1``) or an explicit sequence; a
    seed of ``None`` means the unperturbed historical order.  Only DSM
    variants apply (``spf``/``spf_opt``/``spf_old``/``tmk``/``spf_spec``).

    ``jobs > 1`` (or ``service``, or ``fleet`` — remote ``repro serve
    --tcp`` ``"HOST:PORT"`` specs) runs the first seed locally — the
    sequential-oracle array comparison needs the *contents*, not just
    hashes — and the remaining seeds through a
    :class:`~repro.serve.RunService` pool (or a
    :class:`~repro.serve.FleetService` over the fleet hosts), whose
    results carry the same coherent array hashes (``readback``) and race
    findings (``races_from_doc``) the local run produces.
    """
    if variant not in _DSM_VARIANTS:
        raise ValueError(
            f"racecheck applies to the DSM variants {_DSM_VARIANTS}, not "
            f"{variant!r} (message-passing variants have no shared memory)")
    spec = get_app(app)
    params = spec.params(preset)
    program = spec.build_program(params)

    if variant == "tmk":
        def setup(space):
            spec.hand_tmk_setup(space, params)
        body = lambda tmk: spec.hand_tmk(tmk, params)   # noqa: E731
        scalars_of = None      # combined below from per-pid partials
    else:
        if variant == "spf_opt":
            if spec.spf_opt_options is None:
                raise ValueError(f"{app} has no hand-optimized variant")
            options = spec.spf_opt_options()
        elif variant == "spf_old":
            options = SpfOptions(improved_interface=False)
        else:
            options = SpfOptions()
        if variant == "spf_spec":
            from repro.compiler.spf_spec import compile_spf_spec
            exe = compile_spf_spec(program, nprocs, options)
        else:
            exe = compile_spf(program, nprocs, options)
        setup = exe.setup_space
        body = exe.run_on
        scalars_of = 0         # master's return value is the scalar dict

    seq_views, seq_scalars, _seq_time = run_sequential(program)
    main = _wrap_with_readback(body)

    seed_list = list(range(seeds)) if isinstance(seeds, int) else list(seeds)
    if not seed_list:
        raise ValueError("racecheck needs at least one schedule seed "
                         "(a zero-run verdict would be vacuously OK)")
    parallel = jobs > 1 or service is not None or bool(fleet)
    local_seeds = seed_list[:1] if parallel else seed_list
    remote_seeds = seed_list[1:] if parallel else []

    report = RacecheckReport(app=app, variant=variant, nprocs=nprocs,
                             preset=preset)
    seen_findings: set = set()
    first_arrays: Optional[dict] = None
    for seed in local_seeds:
        run = tmk_run(nprocs, main, setup, model=model, gc_epochs=gc_epochs,
                      schedule_seed=seed, racecheck=True)
        parts = [r[0] for r in run.results]
        _out0, arrays = run.results[0]
        signature = (dict(parts[scalars_of]) if scalars_of is not None
                     else combine_signatures(parts))
        sr = SeedRun(
            seed=seed, time=run.time, races=run.racecheck,
            hashes={name: _hash(a) for name, a in arrays.items()},
            signature=signature,
            scalars_close=(not seq_scalars
                           or signatures_close(signature, seq_scalars)))
        report.runs.append(sr)
        if first_arrays is None:
            first_arrays = arrays
        elif sr.hashes != report.runs[0].hashes:
            report.deterministic = False
        _merge_findings(report, run.racecheck, seen_findings)

    if remote_seeds:
        from repro.api.types import (RunRequest, machine_to_doc,
                                     races_from_doc)
        from repro.eval.parallel import run_requests
        requests = [RunRequest(app=app, variant=variant, nprocs=nprocs,
                               preset=preset, machine=machine_to_doc(model),
                               gc_epochs=gc_epochs, schedule_seed=seed,
                               racecheck=True, readback=True, seq_time=1.0)
                    for seed in remote_seeds]
        results = run_requests(
            requests, jobs=jobs, service=service, fleet=fleet,
            describe=lambda r: (f"racecheck {r.app}/{r.variant} "
                                f"seed {r.schedule_seed}"))
        for seed, res in zip(remote_seeds, results):
            races = races_from_doc(res.races)
            sr = SeedRun(
                seed=seed, time=res.time, races=races,
                hashes=dict(res.array_hashes or {}),
                signature=dict(res.signature),
                scalars_close=(not seq_scalars
                               or signatures_close(res.signature,
                                                   seq_scalars)))
            report.runs.append(sr)
            if sr.hashes != report.runs[0].hashes:
                report.deterministic = False
            _merge_findings(report, races, seen_findings)

    # vs the sequential oracle: bitwise first, tolerance fallback
    for name, got in sorted((first_arrays or {}).items()):
        ref = seq_views.get(name)
        if ref is None or ref.shape != got.shape:
            continue               # runtime-only array (e.g. hand-tmk stats)
        if got.dtype == ref.dtype and got.tobytes() == ref.tobytes():
            report.arrays_exact.append(name)
            continue
        # tolerance matched to the dtype: reordered float32 accumulations
        # (fused loops, staged sums) legitimately drift more than float64
        single = np.result_type(got.dtype, ref.dtype).itemsize <= 4
        rtol, atol = (5e-4, 1e-4) if single else (1e-6, 1e-12)
        if np.allclose(got, ref, rtol=rtol, atol=atol):
            report.arrays_close.append(name)
        else:
            report.arrays_wrong.append(name)
    return report


# ---------------------------------------------------------------------- #
# static <-> dynamic cross-validation

@dataclass
class CrossCheckReport:
    """Static verdicts vs the dynamic detector, for one application.

    The contract being checked: a family the symbolic engine classifies
    PROVEN-PARALLEL must never be implicated in a *true race* the dynamic
    monitor finds under any schedule seed (one direction of soundness),
    and seeded dependence injections must flip its verdict away from
    PROVEN-PARALLEL (the engine is not vacuously optimistic).
    """

    app: str
    nprocs: int
    preset: str
    seeds: list
    verdicts: dict = field(default_factory=dict)   # family -> verdict
    racing_families: list = field(default_factory=list)  # with a true race
    violations: list = field(default_factory=list)  # PP family that raced
    mutations: list = field(default_factory=list)   # per-seed flip records
    dynamic_ok: bool = True   # the underlying racecheck_app verdict

    @property
    def flips(self) -> int:
        return sum(1 for m in self.mutations if m["flipped"])

    @property
    def ok(self) -> bool:
        return (not self.violations and self.dynamic_ok
                and all(m["flipped"] for m in self.mutations))

    def as_doc(self) -> dict:
        return {"schema": "repro-crosscheck/1", "app": self.app,
                "nprocs": self.nprocs, "preset": self.preset,
                "seeds": list(self.seeds), "verdicts": dict(self.verdicts),
                "racing_families": list(self.racing_families),
                "violations": list(self.violations),
                "mutations": [dict(m) for m in self.mutations],
                "dynamic_ok": self.dynamic_ok, "ok": self.ok}

    def format(self) -> str:
        lines = [f"cross-check {self.app} n={self.nprocs} "
                 f"preset={self.preset} seeds={self.seeds}"]
        for fam, verdict in sorted(self.verdicts.items()):
            raced = " [dynamic true race]" if fam in self.racing_families \
                else ""
            lines.append(f"  {fam:24s} {verdict}{raced}")
        lines.append(f"  dynamic: {'OK' if self.dynamic_ok else 'FAIL'}; "
                     f"{len(self.racing_families)} family(ies) raced")
        if self.violations:
            lines.append("  VIOLATION: proven-parallel family(ies) raced "
                         "dynamically: " + ", ".join(self.violations))
        for m in self.mutations:
            lines.append(
                f"  mutation seed={m['seed']} {m['kind']} on "
                f"{m['family']}/{m['array']}: {m['before']} -> {m['after']}"
                f" {'FLIP' if m['flipped'] else 'NO-FLIP'}")
        lines.append(f"  verdict: {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def cross_check_app(app: str, seeds: Union[int, Sequence] = 3,
                    nprocs: int = 8, preset: str = "test",
                    mutations: int = 3,
                    model: Optional[MachineModel] = None,
                    gc_epochs: Optional[int] = 8) -> CrossCheckReport:
    """Assert the static verdicts agree with the dynamic detector.

    Runs :func:`depend.analyze_program` on ``app``'s program and
    :func:`racecheck_app` (``spf`` backend) across ``seeds``
    interleavings, attributes every dynamic *true race* to its loop
    family via the access source tags, and records a violation for any
    PROVEN-PARALLEL family so implicated.  Then injects ``mutations``
    seeded artificial dependences (:func:`depend.inject_dependence`) and
    checks each flips its target family's verdict away from
    PROVEN-PARALLEL.
    """
    spec = get_app(app)
    program = spec.build_program(spec.params(preset))
    static = depend.analyze_program(program, nprocs)

    dyn = racecheck_app(app, "spf", seeds=seeds, nprocs=nprocs,
                        preset=preset, model=model, gc_epochs=gc_epochs)
    racing = sorted({depend.tag_family(src)
                     for f in dyn.true_races
                     for src in (f.source_a, f.source_b)})

    report = CrossCheckReport(
        app=app, nprocs=nprocs, preset=preset,
        seeds=[r.seed for r in dyn.runs],
        verdicts={fam: v.verdict for fam, v in static.verdicts.items()},
        racing_families=racing,
        violations=[fam for fam in racing
                    if static.verdicts.get(fam) is not None
                    and static.verdicts[fam].verdict
                    == depend.PROVEN_PARALLEL],
        dynamic_ok=dyn.ok)

    for seed in range(mutations):
        mutated, mut = depend.inject_dependence(program, seed=seed)
        after = depend.analyze_program(mutated, nprocs)
        verdict = after.verdicts[mut.family].verdict
        report.mutations.append({
            "seed": seed, "kind": mut.kind, "family": mut.family,
            "array": mut.array,
            "before": report.verdicts.get(mut.family, depend.UNKNOWN),
            "after": verdict,
            "flipped": verdict != depend.PROVEN_PARALLEL})
    return report

"""The one app/variant registry every entry point shares.

Before this module existed, ``repro list``, ``cmd_explain``, the
experiments harness and the chaos/racecheck sweeps each re-derived what
applications and variants exist (and which variant supports what) from
their own copies of the lists.  Adding an application meant updating all
of them.  Now :mod:`repro.apps` registration plus the paper constants are
composed *here*, once, and everything else — CLI argument choices, the
``list`` command, request validation in :mod:`repro.api.execute`, the
bench matrix — reads this module.

The registry is intentionally data-only (small frozen records); running
things is :mod:`repro.api.execute`'s job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.eval.constants import APPS, IRREGULAR_APPS, PAPER, REGULAR_APPS

__all__ = ["VARIANTS", "DSM_VARIANTS", "MP_VARIANTS", "MODELED_VARIANTS",
           "FIGURE_VARIANTS", "RACECHECK_VARIANTS", "PRESETS",
           "VariantInfo", "AppInfo", "variant_info", "app_info",
           "app_names", "variant_names", "apps", "variants", "supports",
           "BENCH_MATRIX",
           # paper groupings, re-exported for registry consumers
           "APPS", "REGULAR_APPS", "IRREGULAR_APPS", "PAPER"]

#: canonical variant order (the historical ``experiments.VARIANTS``)
VARIANTS = ["seq", "spf", "tmk", "xhpf", "pvme", "spf_opt", "spf_old",
            "xhpf_ie", "spf_spec"]

#: shared-memory variants (race checking / coherent readback apply)
DSM_VARIANTS = ("spf", "spf_opt", "spf_old", "tmk", "spf_spec")

#: explicit message-passing variants (nothing shared; signatures bit-stable)
MP_VARIANTS = ("xhpf", "xhpf_ie", "pvme")

#: variants the analytic mode can predict (compiler.model imports this)
MODELED_VARIANTS = ("seq", "spf", "spf_old", "xhpf", "xhpf_ie")

#: the four bars of the paper's Figures 1/2, plus the oracle
FIGURE_VARIANTS = ("seq", "spf", "tmk", "xhpf", "pvme")

#: what ``repro racecheck`` accepts (== DSM variants, spf family first)
RACECHECK_VARIANTS = ("spf", "spf_opt", "spf_old", "tmk", "spf_spec")

#: problem-size presets every application provides
PRESETS = ("paper", "bench", "test")

#: the wall-clock/throughput bench matrix: (kernel name, app, variant)
BENCH_MATRIX = (
    ("jacobi_spf", "jacobi", "spf"),
    ("jacobi_tmk", "jacobi", "tmk"),
    ("shallow_spf_opt", "shallow", "spf_opt"),
    ("igrid_spf", "igrid", "spf"),
    ("fft3d_tmk", "fft3d", "tmk"),
)


@dataclass(frozen=True)
class VariantInfo:
    """What one variant is and which machinery applies to it."""

    name: str
    kind: str           # "seq" | "dsm" | "mp"
    source: str         # "oracle" | "compiler" | "hand"
    modeled: bool       # has an analytic replica in repro.compiler.model
    description: str


_VARIANT_INFO = {
    "seq": VariantInfo("seq", "seq", "oracle", True,
                       "sequential oracle (speedup baseline)"),
    "spf": VariantInfo("spf", "dsm", "compiler", True,
                       "compiler-generated shared memory (SPF -> Tmk)"),
    "tmk": VariantInfo("tmk", "dsm", "hand", False,
                       "hand-coded TreadMarks shared memory"),
    "xhpf": VariantInfo("xhpf", "mp", "compiler", True,
                        "compiler-generated message passing (XHPF)"),
    "pvme": VariantInfo("pvme", "mp", "hand", False,
                        "hand-coded PVMe message passing"),
    "spf_opt": VariantInfo("spf_opt", "dsm", "compiler", False,
                           "SPF plus the paper's hand optimizations"),
    "spf_old": VariantInfo("spf_old", "dsm", "compiler", True,
                           "SPF over the original fork-join interface"),
    "xhpf_ie": VariantInfo("xhpf_ie", "mp", "compiler", True,
                           "XHPF with inspector-executor schedules"),
    "spf_spec": VariantInfo("spf_spec", "dsm", "compiler", False,
                            "speculative SPF: statically-unproven loops "
                            "run parallel under the race monitor, with "
                            "sequential re-execution on misspeculation"),
}


@dataclass(frozen=True)
class AppInfo:
    """One application's registry card (spec + paper numbers, composed)."""

    name: str
    regular: bool
    problem_size: str
    presets: tuple
    has_spf_opt: bool
    notes: str = ""

    @property
    def kind(self) -> str:
        return "regular" if self.regular else "irregular"


def _specs() -> dict:
    # importing the package runs each app module's register() call
    import repro.apps  # noqa: F401  (registration side effect)
    from repro.apps.common import APP_REGISTRY
    return APP_REGISTRY


def app_names() -> list:
    """Canonical application order (regular apps first, as the paper)."""
    return list(APPS)


def variant_names() -> list:
    return list(VARIANTS)


def variant_info(name: str) -> VariantInfo:
    try:
        return _VARIANT_INFO[name]
    except KeyError:
        raise ValueError(f"unknown variant {name!r} (choose from "
                         f"{', '.join(VARIANTS)})") from None


def app_info(name: str) -> AppInfo:
    specs = _specs()
    if name not in specs:
        raise ValueError(f"unknown application {name!r} (choose from "
                         f"{', '.join(APPS)})")
    spec = specs[name]
    paper = PAPER.get(name)
    return AppInfo(name=name, regular=spec.regular,
                   problem_size=paper.problem_size if paper else "",
                   presets=tuple(sorted(spec.presets)),
                   has_spf_opt=spec.spf_opt_options is not None,
                   notes=spec.notes)


def apps() -> list:
    return [app_info(name) for name in app_names()]


def variants() -> list:
    return [variant_info(name) for name in VARIANTS]


def supports(app: str, variant: str) -> Optional[str]:
    """None when (app, variant) is runnable, else the reason it is not."""
    info = variant_info(variant)          # raises on unknown variant
    card = app_info(app)                  # raises on unknown app
    if variant == "spf_opt" and not card.has_spf_opt:
        return (f"{app} has no hand-optimized variant in the paper")
    del info
    return None

"""Traffic-prediction cross-check: static estimate vs. simulated DsmStats.

The regular applications' communication is statically knowable (the
paper's premise for compiling them well); the estimator must land within
the declared tolerances of the simulator's counters.  The irregular
applications are exactly the ones it must *refuse* to predict.
"""

import pytest

from repro.apps.common import get_app
from repro.compiler.lint import (TRAFFIC_TOLERANCES, compare_traffic,
                                 estimate_spf_traffic)
from repro.eval.experiments import run_variant

N = 8
REGULAR = ["jacobi", "shallow", "mgs", "fft3d"]


def _estimate(app):
    spec = get_app(app)
    program = spec.build_program(spec.params("test"))
    return estimate_spf_traffic(program, N)


@pytest.mark.parametrize("app", REGULAR)
def test_prediction_within_declared_tolerance(app):
    est = _estimate(app)
    assert est.analyzable, est.reason
    res = run_variant(app, "spf", nprocs=N, preset="test")
    rows = compare_traffic(est, res.dsm, res.total_messages)
    assert {m for m, *_ in rows} == set(TRAFFIC_TOLERANCES)
    bad = [(m, p, a, tol) for m, p, a, tol, ok in rows if not ok]
    assert not bad, f"{app}: out-of-tolerance predictions {bad}"


@pytest.mark.parametrize("app", ["igrid", "nbf"])
def test_irregular_apps_are_unanalyzable(app):
    est = _estimate(app)
    assert not est.analyzable
    assert "irregular" in est.reason or "accumulate" in est.reason

#!/usr/bin/env python
"""The full compiler pipeline on a custom application.

Writes a small red/black-style relaxation in the loop-nest IR once, then:

1. runs it sequentially (the oracle),
2. compiles it with the SPF analog -> fork-join program on TreadMarks,
3. compiles it with the XHPF analog -> SPMD message passing,
4. re-compiles the SPF build with the paper's hand optimizations
   (communication aggregation + loop fusion) switched on,

and prints the speedups and traffic of each, verifying they all compute
the same checksum.

Run:  python examples/compiler_pipeline.py
"""

import numpy as np

from repro.compiler import (Access, ArrayDecl, Full, Mark, ParallelLoop,
                            Program, Reduction, SeqBlock, Span, SpfOptions,
                            TimeLoop, run_sequential, run_spf, run_xhpf)

N = 1024
ITERS = 6
NPROCS = 8
COST = 250e-9    # seconds per element update (POWER2-ish stencil rate)


def build_program():
    def init(views):
        views["f"][...] = 0.0
        views["f"][:, :8] = 1.0

    def relax(views, lo, hi):
        f, g = views["f"], views["g"]
        lo, hi = max(lo, 1), min(hi, N - 1)
        if hi <= lo:
            return
        src = f[lo - 1:hi + 1]
        g[lo:hi] = (src[:-2] + src[2:] + src[1:-1]) / 3.0

    def writeback(views, lo, hi):
        views["f"][lo:hi] = views["g"][lo:hi]
        return {"sum": float(np.abs(views["f"][lo:hi]).sum(dtype=np.float64))}

    step = [
        ParallelLoop("relax", N, relax,
                     reads=[Access("f", (Span(-1, 1), Full()))],
                     writes=[Access("g", (Span(), Full()))],
                     align=("g", 0), cost_per_iter=COST * N),
        ParallelLoop("writeback", N, writeback,
                     reads=[Access("g", (Span(), Full()))],
                     writes=[Access("f", (Span(), Full()))],
                     reductions=[Reduction("sum")],
                     align=("f", 0), cost_per_iter=COST * N / 3),
    ]
    return Program(
        "relaxation",
        arrays=[ArrayDecl("f", (N, N), np.float32, distribute=0),
                ArrayDecl("g", (N, N), np.float32, distribute=0)],
        body=[SeqBlock("init", init,
                       writes=[Access("f", (Full(), Full()))],
                       cost=5e-9 * N * N),
              Mark("start"),
              TimeLoop("steps", ITERS, step),
              Mark("stop")])


def main():
    _views, seq_scalars, seq_time = run_sequential(build_program())
    print(f"{'variant':24s} {'speedup':>8s} {'msgs':>8s} {'KB':>10s} "
          f"{'checksum':>14s}")
    print(f"{'sequential oracle':24s} {'1.00':>8s} {'-':>8s} {'-':>10s} "
          f"{seq_scalars['sum']:14.2f}")

    runs = [
        ("SPF -> TreadMarks", lambda: run_spf(build_program(),
                                              nprocs=NPROCS)),
        ("SPF + hand opts", lambda: run_spf(
            build_program(), nprocs=NPROCS,
            options=SpfOptions(aggregate=True, fuse_loops=True))),
        ("XHPF -> message passing", lambda: run_xhpf(build_program(),
                                                     nprocs=NPROCS)),
    ]
    for label, runner in runs:
        result = runner()
        elapsed, _ = result.window()
        speedup = seq_time / elapsed
        checksum = result.scalars["sum"]
        print(f"{label:24s} {speedup:8.2f} {result.messages:8d} "
              f"{result.kilobytes:10.1f} {checksum:14.2f}")
        assert abs(checksum - seq_scalars["sum"]) < 1e-3 * seq_scalars["sum"]
    print("\nall variants agree with the sequential oracle")


if __name__ == "__main__":
    main()

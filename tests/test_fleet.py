"""Fleet-tier tests: cache-affine host routing, admission control, and
failover (kill a host mid-batch) with the exactly-once result contract.

Two layers:

* **in-process hosts** — two :class:`~repro.serve.RunService` pools
  behind :class:`~repro.serve.WireServer`, echo runner: scheduling,
  counters, stats, the stdio wire front (``python -m repro fleet``);
* **subprocess hosts** — two real ``repro serve --port 0`` processes;
  one is killed while requests are verifiably in flight, and the fleet
  must still deliver exactly one result per request, bit-identical to a
  serial run, with the loss and the requeues on ``stats()["fleet"]``.
"""

import os
import re
import subprocess
import sys
import threading

import pytest

from repro.api import RunRequest, RunResult
from repro.serve import (FleetService, RunService, WireServer, parse_host,
                         serve_stdio)

ECHO = "tests.serve_helpers:echo_runner"

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _reqs(n=12):
    apps = ("jacobi", "mgs")
    return [RunRequest(apps[i % 2], "spf", nprocs=2, preset="test",
                       seq_time=1.0, tag=f"r{i}") for i in range(n)]


def _expected(request):
    """What the echo runner answers for ``request`` (deterministic)."""
    return RunResult(app=request.app, variant=request.variant,
                     nprocs=request.nprocs, preset=request.preset,
                     time=1.0, seq_time=float(request.seq_time or 0.0),
                     tag=request.tag)


# ---------------------------------------------------------------------- #
# in-process hosts

@pytest.fixture(scope="module")
def cluster():
    svcs = [RunService(workers=2, runner=ECHO) for _ in range(2)]
    servers = [WireServer(svc) for svc in svcs]
    for server in servers:
        server.serve_in_thread()
    yield [f"{server.host}:{server.port}" for server in servers]
    for server in servers:
        server.close()
    for svc in svcs:
        svc.close()


@pytest.fixture(scope="module")
def fleet(cluster):
    with FleetService(cluster) as f:
        yield f


def test_parse_host():
    assert parse_host("10.0.0.1:7590") == ("10.0.0.1", 7590)
    assert parse_host(("h", 1)) == ("h", 1)
    for bad in ("nohost", "h:", ":7", "h:seven"):
        with pytest.raises(ValueError):
            parse_host(bad)


def test_batch_ordered_ok_and_bit_identical(fleet):
    requests = _reqs()
    batch = fleet.run_batch(requests)
    assert batch.ok and batch.runs == len(requests)
    assert batch.workers == fleet.live_workers() > 0
    assert [r.fingerprint() for r in batch.results] \
        == [_expected(r).fingerprint() for r in requests]
    assert batch.crashes == 0


def test_warm_repeat_batch_routes_by_affinity(fleet):
    requests = _reqs()
    fleet.run_batch(requests)              # warm every key somewhere
    again = fleet.run_batch(requests)
    assert again.ok
    # every key is now warm on exactly one host, so the repeat batch
    # must route overwhelmingly by affinity (steals only under pressure)
    assert again.affinity_hits > 0
    stats = fleet.stats()["fleet"]
    assert stats["affinity_hits"] >= again.affinity_hits
    assert sum(h["runs"] for h in stats["hosts"].values()) \
        >= 2 * len(requests)
    assert stats["warm_keys"]               # the mirror is populated


def test_stream_yields_every_index_exactly_once(fleet):
    requests = _reqs(8)
    seen = {}
    for index, result in fleet.stream(requests):
        assert index not in seen
        seen[index] = result
    assert sorted(seen) == list(range(len(requests)))
    assert all(r.ok for r in seen.values())


def test_stats_shape_and_probe(fleet):
    stats = fleet.stats()
    assert stats["workers"] == fleet.live_workers()
    fl = stats["fleet"]
    for key in ("hosts", "live_hosts", "affinity_hits", "steals",
                "rejections", "requeues", "hosts_lost", "retries",
                "steal_threshold", "max_backlog", "warm_keys"):
        assert key in fl
    assert fl["live_hosts"] == 2
    health = fleet.probe()
    assert all(h["alive"] for h in health.values())
    assert all(h["last_rtt_ms"] is not None for h in health.values())


def test_admission_control_rejects_overflow(cluster):
    with FleetService(cluster, max_backlog=1) as fleet:
        batch = fleet.run_batch(_reqs(4))
    assert not batch.ok
    verdicts = [r.error_kind for r in batch.results]
    assert verdicts.count("Rejected") == 3      # one admitted, rest refused
    assert batch.rejected == 3
    rejected = [r for r in batch.results if r.error_kind == "Rejected"]
    assert all("max_backlog" in r.error for r in rejected)


def test_no_reachable_host_raises():
    import socket
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    with pytest.raises(ConnectionError, match="no fleet host reachable"):
        FleetService([f"127.0.0.1:{port}"], retries=0)


def test_fleet_behind_stdio_wire(fleet):
    """The `python -m repro fleet` front: the wire layer dispatches
    against FleetService exactly as it does against RunService."""
    import io
    import json

    requests = _reqs(4)
    lines = [json.dumps({"op": "batch", "id": "b1",
                         "requests": [r.to_json() for r in requests]}),
             json.dumps({"op": "stats"}),
             json.dumps({"op": "bye"})]
    out = io.StringIO()
    verdict = serve_stdio(fleet, io.StringIO("\n".join(lines) + "\n"), out)
    assert verdict == "bye"
    msgs = [json.loads(line) for line in out.getvalue().splitlines()]
    assert msgs[0]["op"] == "hello"
    results = [m for m in msgs if m["op"] == "result"]
    assert sorted(m["index"] for m in results) == list(range(4))
    done = [m for m in msgs if m["op"] == "batch-done"]
    assert len(done) == 1 and done[0]["batch"]["ok"]
    stats = [m for m in msgs if m["op"] == "stats"]
    assert stats and "fleet" in stats[0]["stats"]


# ---------------------------------------------------------------------- #
# subprocess hosts: failover mid-batch

def _spawn_serve_host():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--runner", ECHO],
        cwd=REPO_ROOT, env=env, text=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
    got = []
    reader = threading.Thread(
        target=lambda: got.append(proc.stderr.readline()), daemon=True)
    reader.start()
    reader.join(timeout=120.0)
    if not got or "listening on" not in got[0]:
        proc.kill()
        raise RuntimeError(f"serve host did not come up: {got}")
    match = re.search(r"listening on ([\d.]+):(\d+)", got[0])
    return proc, f"{match.group(1)}:{match.group(2)}"


def test_host_killed_mid_batch_requeues_and_completes():
    proc_a, spec_a = _spawn_serve_host()
    proc_b, spec_b = _spawn_serve_host()
    try:
        # one fast request, the rest slow: when the fast result arrives,
        # both hosts verifiably hold slow requests in flight — killing a
        # host then *must* exercise the requeue path
        requests = [RunRequest("jacobi", "spf", nprocs=2, preset="test",
                               seq_time=1.0, tag="slow:0.01:r0")]
        requests += [RunRequest("jacobi", "spf", nprocs=2, preset="test",
                                seq_time=1.0, tag=f"slow:0.4:r{i}")
                     for i in range(1, 12)]
        with FleetService([spec_a, spec_b], retries=1,
                          backoff=0.01) as fleet:
            seen = {}
            killed = False
            for index, result in fleet.stream(requests):
                if not killed:
                    proc_a.kill()
                    proc_a.wait(timeout=30.0)
                    killed = True
                assert index not in seen     # exactly once, never twice
                seen[index] = result
            assert sorted(seen) == list(range(len(requests)))
            assert all(r.ok for r in seen.values()), \
                [r.error for r in seen.values() if not r.ok]
            # bit-identical to a serial run of the same requests
            assert [seen[i].fingerprint() for i in range(len(requests))] \
                == [_expected(r).fingerprint() for r in requests]
            stats = fleet.stats()["fleet"]
            assert stats["hosts_lost"] == 1
            assert stats["requeues"] >= 1
            assert stats["live_hosts"] == 1
            # the survivor keeps serving after the loss
            after = fleet.run_batch(requests[:2])
            assert after.ok
    finally:
        for proc in (proc_a, proc_b):
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)

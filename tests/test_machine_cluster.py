"""Tests for the machine model and cluster runner (repro.sim)."""

import pytest

from repro.sim import Cluster, MachineModel, SP2_MODEL
from repro.sim.machine import PAGE_SIZE


def test_default_model_is_sp2_shaped():
    m = SP2_MODEL
    assert m.page_size == PAGE_SIZE == 4096
    assert 0 < m.latency < 1e-3
    assert m.byte_time > 0
    assert m.mp_packet_bytes == 4096


def test_message_time_scales_with_size():
    m = SP2_MODEL
    assert m.message_time(100_000) > m.message_time(100) > m.latency


def test_with_override_creates_copy():
    m = SP2_MODEL.with_(latency=1.0)
    assert m.latency == 1.0
    assert SP2_MODEL.latency != 1.0
    assert m.byte_time == SP2_MODEL.byte_time


def test_diff_cost_helpers():
    m = SP2_MODEL
    assert m.diff_create_time(4096) > m.diff_create_overhead
    assert m.diff_apply_time(0) == m.diff_apply_overhead


def test_cluster_requires_positive_procs():
    with pytest.raises(ValueError):
        Cluster(nprocs=0)


def test_cluster_is_single_use():
    c = Cluster(nprocs=1)
    c.run(lambda env: None)
    with pytest.raises(RuntimeError):
        c.run(lambda env: None)


def test_env_identity_and_compute():
    def prog(env):
        assert 0 <= env.pid < env.nprocs
        env.compute(0.5)
        return (env.pid, env.now, env.busy_time)

    r = Cluster(nprocs=3).run(prog)
    assert [res[0] for res in r.results] == [0, 1, 2]
    assert all(res[1] == 0.5 and res[2] == 0.5 for res in r.results)


def test_negative_compute_rejected():
    def prog(env):
        with pytest.raises(ValueError):
            env.compute(-1.0)

    Cluster(nprocs=1).run(prog)


def test_per_proc_args():
    def prog(env, shared, mine):
        return (shared, mine)

    r = Cluster(nprocs=3).run(prog, args=("s",),
                              per_proc_args=[("a",), ("b",), ("c",)])
    assert r.results == [("s", "a"), ("s", "b"), ("s", "c")]


def test_marks_and_window():
    def prog(env):
        env.compute(1.0)
        env.mark("start")
        env.compute(2.0)
        if env.pid == 0:
            env.net.send(env.proc, 0, 1, "x", nbytes=100)
        else:
            env.net.recv(env.proc, 1)
        env.mark("stop")
        env.compute(5.0)   # outside the window

    r = Cluster(nprocs=2).run(prog)
    elapsed, traffic = r.window()
    assert 2.0 <= elapsed < 3.0
    assert traffic.messages == 1
    assert r.time >= 8.0


def test_window_without_marks_falls_back_to_whole_run():
    def prog(env):
        env.compute(1.0)

    r = Cluster(nprocs=2).run(prog)
    elapsed, traffic = r.window()
    assert elapsed == r.time
    assert traffic.messages == r.messages


def test_run_result_speedup():
    def prog(env):
        env.compute(1.0)

    r = Cluster(nprocs=2).run(prog)
    assert r.speedup(8.0) == pytest.approx(8.0)


def test_model_nprocs_adjusted_to_cluster():
    c = Cluster(nprocs=5)
    assert c.model.nprocs == 5
